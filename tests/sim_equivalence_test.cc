/**
 * @file
 * SoA-vs-golden equivalence: pins bit-exact simulation counters.
 *
 * The AoSoA cache refactor, batched op runs, the fused writeback scan,
 * and the arena-backed layout all promise *identical* simulation
 * semantics — not "close", identical. This test runs a fixed
 * (workload, seed, geometry) matrix and compares every integer
 * counter against values captured from the pre-refactor
 * array-of-structs implementation. Any divergence — one extra rng
 * call, one reordered eviction, one off-by-one in a tag scan — shows
 * up as an exact counter mismatch here, long before it would show up
 * as a subtle drift in a fitted figure.
 *
 * The golden table was produced by the pre-refactor build with this
 * exact RunConfig; regenerating it requires checking out a pre-SoA
 * tree, so treat a mismatch as a bug in the refactor, not a stale
 * fixture.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "measure/runner.hh"
#include "sim/machine.hh"
#include "util/log.hh"
#include "util/units.hh"

using namespace memsense;

namespace
{

struct GoldenCounters
{
    const char *id;
    // MachineSnapshot totals.
    std::uint64_t instructions, memoryFetches, writebacks;
    Picos busyTime, idleTime, dramLatencyTotal;
    // Shared-LLC stats.
    std::uint64_t llcHits, llcMisses, llcFills, llcEvictions,
        llcDirtyEvictions;
    // Memory-controller aggregate stats.
    std::uint64_t mcReads, mcWrites;
    Picos mcTotalReadLatency;
    // Channel-0 stats.
    std::uint64_t ch0Reads, ch0Writes, ch0RowHits;
    Picos ch0BusBusy, ch0QueueDelay;
    // Core-0 counters.
    std::uint64_t c0Instructions, c0Loads;
    Picos c0MshrStall, c0DepStall, c0RobStall, c0BusyTime;
};

// Captured from the pre-SoA array-of-structs simulator (see file
// comment). One row per workload class exercised by the paper's
// figures: streaming scan, pointer-chasing OLTP, HPC, JVM-heavy
// Spark, and idle-heavy web caching.
constexpr GoldenCounters kGolden[] = {
    {"column_store",
     1826964ull, 11096ull, 0ull,
     799966265ll, 0ll, 792985431ll,
     6675ull, 10004ull, 16695ull, 16695ull, 0ull,
     16695ull, 0ull, 1191387164ll,
     4246ull, 0ull, 835ull, 22745822ll, 10610522ll,
     1364240ull, 55143ull, 0ll, 138533109ll, 6683ll, 600011844ll},
    {"oltp",
     741156ull, 8773ull, 0ull,
     800890279ll, 0ll, 676736624ll,
     75ull, 13175ull, 13175ull, 13175ull, 0ull,
     18295ull, 1024ull, 5004012928ll,
     4545ull, 224ull, 1772ull, 25547533ll, 1118162688ll,
     551874ull, 5562ull, 0ll, 308860434ll, 0ll, 600550760ll},
    {"bwaves",
     2527393ull, 79296ull, 8098ull,
     799944214ll, 0ll, 5802006923ll,
     85466ull, 33754ull, 119285ull, 119285ull, 8098ull,
     119285ull, 8098ull, 8626204071ll,
     29811ull, 1987ull, 22094ull, 170341886ll, 570405179ll,
     1885029ull, 45054ull, 29770ll, 216316634ll, 0ll, 600003730ll},
    {"spark",
     1059329ull, 7654ull, 0ull,
     492279313ll, 299700000ll, 523775453ll,
     1907ull, 9923ull, 11810ull, 11810ull, 0ull,
     11810ull, 0ull, 804619160ll,
     2967ull, 0ull, 888ull, 15894219ll, 6430962ll,
     791644ull, 7544ull, 0ll, 134719584ll, 0ll, 378246697ll},
    {"web_caching",
     550376ull, 2975ull, 0ull,
     437335963ll, 362970000ll, 225018506ll,
     0ull, 4464ull, 4464ull, 4464ull, 0ull,
     4464ull, 0ull, 337293108ll,
     1141ull, 0ull, 4ull, 6112337ll, 1500282ll,
     412797ull, 2141ull, 0ll, 88711120ll, 0ll, 329225312ll},
};

class SimEquivalence : public ::testing::TestWithParam<GoldenCounters>
{
};

TEST_P(SimEquivalence, BitIdenticalToPreSoaGolden)
{
    const GoldenCounters &g = GetParam();
    setLogLevel(LogLevel::Warn);

    measure::RunConfig rc;
    rc.workloadId = g.id;
    rc.cores = 2;
    rc.ghz = 2.7;
    rc.memMtPerSec = 1866.7;
    rc.channels = 4;
    rc.seed = 7;
    rc.adaptiveWarmup = false;
    rc.warmup = nsToPicos(200'000.0);
    rc.measure = nsToPicos(400'000.0);

    measure::WorkloadRun run(rc);
    run.warmup();
    sim::MachineSnapshot d = run.measure();
    const sim::Machine &m = run.machine();
    const sim::CoreCounters &c0 = m.core(0).counters();
    const sim::CacheStats &llc = m.llc().stats();
    const sim::MemCtrlStats &mc = m.memctrl().stats();
    const sim::ChannelStats &ch0 = m.memctrl().channelStats(0);

    EXPECT_EQ(d.instructions, g.instructions);
    EXPECT_EQ(d.memoryFetches, g.memoryFetches);
    EXPECT_EQ(d.writebacks, g.writebacks);
    EXPECT_EQ(d.busyTime, g.busyTime);
    EXPECT_EQ(d.idleTime, g.idleTime);
    EXPECT_EQ(d.dramLatencyTotal, g.dramLatencyTotal);

    EXPECT_EQ(llc.hits, g.llcHits);
    EXPECT_EQ(llc.misses, g.llcMisses);
    EXPECT_EQ(llc.fills, g.llcFills);
    EXPECT_EQ(llc.evictions, g.llcEvictions);
    EXPECT_EQ(llc.dirtyEvictions, g.llcDirtyEvictions);

    EXPECT_EQ(mc.reads, g.mcReads);
    EXPECT_EQ(mc.writes, g.mcWrites);
    EXPECT_EQ(mc.totalReadLatency, g.mcTotalReadLatency);

    EXPECT_EQ(ch0.reads, g.ch0Reads);
    EXPECT_EQ(ch0.writes, g.ch0Writes);
    EXPECT_EQ(ch0.rowHits, g.ch0RowHits);
    EXPECT_EQ(ch0.busBusy, g.ch0BusBusy);
    EXPECT_EQ(ch0.queueDelay, g.ch0QueueDelay);

    EXPECT_EQ(c0.instructions, g.c0Instructions);
    EXPECT_EQ(c0.loads, g.c0Loads);
    EXPECT_EQ(c0.mshrStall, g.c0MshrStall);
    EXPECT_EQ(c0.depStall, g.c0DepStall);
    EXPECT_EQ(c0.robStall, g.c0RobStall);
    EXPECT_EQ(c0.busyTime, g.c0BusyTime);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, SimEquivalence, ::testing::ValuesIn(kGolden),
    [](const ::testing::TestParamInfo<GoldenCounters> &param_info) {
        return std::string(param_info.param.id);
    });

} // namespace
