/**
 * @file
 * Tests for the bump/arena allocator backing the simulator hot path:
 * alignment guarantees, reset/reuse of normal blocks, the dedicated
 * large-allocation path, the std::allocator adapter (heap fallback
 * included), and the AlignedSlab raw-buffer helper. Under ASan the
 * poisoning of never-allocated and reset regions is exercised too.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <numeric>
#include <vector>

#include "util/arena.hh"

using namespace memsense;

namespace
{

bool
isAligned(const void *p, std::size_t align)
{
    return reinterpret_cast<std::uintptr_t>(p) % align == 0;
}

TEST(Arena, HonorsRequestedAlignment)
{
    util::Arena arena;
    for (std::size_t align : {std::size_t{1}, std::size_t{8},
                              std::size_t{64}, std::size_t{128}}) {
        // Skew the cursor first so alignment is actually exercised.
        arena.allocate(3, 1);
        void *p = arena.allocate(32, align);
        ASSERT_NE(p, nullptr);
        EXPECT_TRUE(isAligned(p, align)) << "align " << align;
    }
}

TEST(Arena, AllocationsAreDisjointAndUsable)
{
    util::Arena arena;
    std::vector<unsigned char *> ptrs;
    for (int i = 0; i < 64; ++i) {
        auto *p = static_cast<unsigned char *>(arena.allocate(97, 8));
        std::memset(p, i, 97);
        ptrs.push_back(p);
    }
    for (int i = 0; i < 64; ++i) {
        for (int j = 0; j < 97; ++j)
            ASSERT_EQ(ptrs[i][j], i) << "allocation " << i
                                     << " was overwritten";
    }
}

TEST(Arena, GrowsByChainingBlocks)
{
    util::Arena arena(1024);
    EXPECT_EQ(arena.blockCount(), 0u);
    for (int i = 0; i < 32; ++i)
        arena.allocate(256, 8);
    // 32 * 256 bytes cannot fit one 1 KiB block.
    EXPECT_GT(arena.blockCount(), 1u);
    EXPECT_EQ(arena.bytesAllocated(), 32u * 256u);
    EXPECT_GE(arena.bytesReserved(), arena.bytesAllocated());
}

TEST(Arena, ResetRetainsNormalBlockCapacity)
{
    util::Arena arena(1024);
    for (int i = 0; i < 16; ++i)
        arena.allocate(256, 8);
    const std::size_t blocks_before = arena.blockCount();
    const std::size_t reserved_before = arena.bytesReserved();

    arena.reset();
    EXPECT_EQ(arena.bytesAllocated(), 0u);
    EXPECT_EQ(arena.blockCount(), blocks_before);
    EXPECT_EQ(arena.bytesReserved(), reserved_before);

    // The same footprint must be served entirely from retained blocks.
    for (int i = 0; i < 16; ++i)
        arena.allocate(256, 8);
    EXPECT_EQ(arena.blockCount(), blocks_before);
}

TEST(Arena, LargeAllocationsGetDedicatedBlocks)
{
    util::Arena arena(1024);
    // More than half a block routes to the large path.
    void *p = arena.allocate(4096, 64);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(isAligned(p, 64));
    EXPECT_EQ(arena.largeAllocCount(), 1u);
    std::memset(p, 0xab, 4096);

    // Large blocks are released (not retained) by reset().
    arena.reset();
    EXPECT_EQ(arena.largeAllocCount(), 0u);
}

TEST(Arena, OversizedAlignmentRoutesToLargePath)
{
    util::Arena arena(1024);
    // align > blockBytes/4 cannot be guaranteed by a normal block bump.
    void *p = arena.allocate(64, 512);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(isAligned(p, 512));
    EXPECT_EQ(arena.largeAllocCount(), 1u);
}

TEST(Arena, ZeroByteAllocationsReturnValidPointers)
{
    util::Arena arena;
    void *a = arena.allocate(0);
    void *b = arena.allocate(0);
    EXPECT_NE(a, nullptr);
    EXPECT_NE(b, nullptr);
    EXPECT_NE(a, b);
}

TEST(ArenaAllocator, VectorBackedByArena)
{
    util::Arena arena;
    util::ArenaAllocator<std::uint64_t> alloc(&arena);
    util::ArenaVector<std::uint64_t> v(alloc);
    v.reserve(1000);
    for (std::uint64_t i = 0; i < 1000; ++i)
        v.push_back(i);
    EXPECT_EQ(std::accumulate(v.begin(), v.end(), std::uint64_t{0}),
              999u * 1000u / 2u);
    EXPECT_GE(arena.bytesAllocated(), 1000u * sizeof(std::uint64_t));
}

TEST(ArenaAllocator, NullArenaFallsBackToHeap)
{
    // Default-constructed allocator must behave like std::allocator:
    // usable, and individually deallocating (no arena leak).
    util::ArenaVector<int> v;
    for (int i = 0; i < 10000; ++i)
        v.push_back(i);
    EXPECT_EQ(v.size(), 10000u);
    EXPECT_EQ(v[9999], 9999);
}

TEST(ArenaAllocator, RebindsAcrossValueTypes)
{
    util::Arena arena;
    util::ArenaAllocator<int> ints(&arena);
    util::ArenaAllocator<double> doubles(ints);
    EXPECT_EQ(doubles.arena(), &arena);
    EXPECT_TRUE((ints == util::ArenaAllocator<int>(&arena)));
}

TEST(AlignedSlab, CacheLineAlignedHeapBacked)
{
    util::AlignedSlab slab;
    slab.init(4096, nullptr);
    ASSERT_NE(slab.data(), nullptr);
    EXPECT_TRUE(isAligned(slab.data(), util::AlignedSlab::kAlign));
    // Zeroed by default.
    for (std::size_t i = 0; i < 4096; ++i)
        ASSERT_EQ(slab.data()[i], 0u);
}

TEST(AlignedSlab, CacheLineAlignedArenaBacked)
{
    util::Arena arena;
    util::AlignedSlab slab;
    slab.init(256, &arena);
    ASSERT_NE(slab.data(), nullptr);
    EXPECT_TRUE(isAligned(slab.data(), util::AlignedSlab::kAlign));
    EXPECT_GE(arena.bytesAllocated(), 256u);
}

TEST(AlignedSlab, UnzeroedInitIsWritable)
{
    util::AlignedSlab slab;
    slab.init(512, nullptr, /*zero=*/false);
    std::memset(slab.data(), 0x5a, 512);
    for (std::size_t i = 0; i < 512; ++i)
        ASSERT_EQ(slab.data()[i], 0x5au);
}

#if MEMSENSE_ARENA_ASAN
/**
 * Under AddressSanitizer, memory reclaimed by reset() must be
 * poisoned: a stale pointer read would abort the process, so this
 * test only checks the non-fatal property that fresh allocations
 * after reset are unpoisoned (the poison/unpoison pairing works).
 */
TEST(Arena, AsanRepoisonsOnReset)
{
    util::Arena arena(1024);
    auto *p = static_cast<unsigned char *>(arena.allocate(64, 8));
    p[0] = 1; // allocated: must be addressable
    EXPECT_FALSE(__asan_address_is_poisoned(p));
    arena.reset();
    EXPECT_TRUE(__asan_address_is_poisoned(p));
    auto *q = static_cast<unsigned char *>(arena.allocate(64, 8));
    EXPECT_FALSE(__asan_address_is_poisoned(q));
    q[0] = 2;
}
#endif

} // namespace
