/**
 * @file
 * Tests for the workload catalog and factory.
 */

#include <gtest/gtest.h>

#include "model/paper_data.hh"
#include "util/error.hh"
#include "workloads/factory.hh"

namespace memsense::workloads
{
namespace
{

TEST(Catalog, TwelveWorkloadsInPaperOrder)
{
    const auto &cat = workloadCatalog();
    ASSERT_EQ(cat.size(), 12u);
    EXPECT_EQ(cat[0].id, "column_store");
    EXPECT_EQ(cat[3].id, "spark");
    EXPECT_EQ(cat[4].id, "oltp");
    EXPECT_EQ(cat[8].id, "bwaves");
    EXPECT_EQ(cat[11].id, "wrf");
}

TEST(Catalog, ClassLabelsMatchPaperSections)
{
    for (const auto &info : workloadCatalog()) {
        EXPECT_EQ(info.cls, info.paperTarget.cls) << info.id;
    }
    EXPECT_EQ(workloadInfo("spark").cls, model::WorkloadClass::BigData);
    EXPECT_EQ(workloadInfo("jvm").cls, model::WorkloadClass::Enterprise);
    EXPECT_EQ(workloadInfo("milc").cls, model::WorkloadClass::Hpc);
}

TEST(Catalog, PaperTargetsComeFromPublishedTables)
{
    const auto &info = workloadInfo("column_store");
    EXPECT_EQ(info.display, "Structured Data");
    EXPECT_DOUBLE_EQ(info.paperTarget.cpiCache, 0.89);
    EXPECT_DOUBLE_EQ(info.paperTarget.bf, 0.20);
}

TEST(Catalog, NitsCarriesTheIoStream)
{
    // Paper Sec. V.D: >2 GB/s of SSD RAID traffic.
    const auto &info = workloadInfo("nits");
    EXPECT_GT(info.io.bytesPerSecond, 2e9);
    // Most other workloads have none.
    EXPECT_DOUBLE_EQ(workloadInfo("jvm").io.bytesPerSecond, 0.0);
    EXPECT_DOUBLE_EQ(workloadInfo("bwaves").io.bytesPerSecond, 0.0);
}

TEST(Catalog, HpcUsesThreeCores)
{
    // Paper Sec. V.N: three cores per socket for the SPECfp runs.
    for (const char *id : {"bwaves", "milc", "soplex", "wrf"})
        EXPECT_EQ(workloadInfo(id).characterizationCores, 3) << id;
    EXPECT_EQ(workloadInfo("oltp").characterizationCores, 4);
}

TEST(Catalog, UnknownIdThrows)
{
    EXPECT_THROW(workloadInfo("nope"), ConfigError);
    EXPECT_THROW(makeWorkload("nope", 0, 1), ConfigError);
    EXPECT_THROW(makeWorkload("spark", -1, 1), ConfigError);
}

TEST(Factory, EveryCatalogEntryConstructs)
{
    for (const auto &info : workloadCatalog()) {
        auto w = makeWorkload(info.id, 0, 1);
        ASSERT_NE(w, nullptr) << info.id;
        EXPECT_FALSE(w->name().empty());
        sim::MicroOp op;
        EXPECT_TRUE(w->next(op)) << info.id;
    }
}

} // anonymous namespace
} // namespace memsense::workloads
