/**
 * @file
 * Unit and statistical tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "util/rng.hh"

namespace memsense
{
namespace
{

TEST(Rng, SameSeedSameStream)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10'000; ++i)
        ASSERT_LT(r.nextBounded(17), 17u);
}

TEST(Rng, BoundedIsRoughlyUniform)
{
    Rng r(11);
    constexpr int kBuckets = 8;
    constexpr int kDraws = 80'000;
    std::vector<int> counts(kBuckets, 0);
    for (int i = 0; i < kDraws; ++i)
        ++counts[r.nextBounded(kBuckets)];
    for (int c : counts) {
        EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.06);
    }
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(3);
    for (int i = 0; i < 10'000; ++i) {
        double d = r.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
    }
}

TEST(Rng, ChanceEdgeCases)
{
    Rng r(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
        EXPECT_FALSE(r.chance(-0.5));
        EXPECT_TRUE(r.chance(1.5));
    }
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng r(9);
    int hits = 0;
    constexpr int kDraws = 50'000;
    for (int i = 0; i < kDraws; ++i)
        if (r.chance(0.3))
            ++hits;
    EXPECT_NEAR(hits / static_cast<double>(kDraws), 0.3, 0.02);
}

TEST(Rng, RangeInclusive)
{
    Rng r(13);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 10'000; ++i) {
        auto v = r.nextRange(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        saw_lo = saw_lo || v == -3;
        saw_hi = saw_hi || v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialHasRequestedMean)
{
    Rng r(17);
    double sum = 0.0;
    constexpr int kDraws = 100'000;
    for (int i = 0; i < kDraws; ++i)
        sum += r.nextExponential(5.0);
    EXPECT_NEAR(sum / kDraws, 5.0, 0.15);
}

TEST(Rng, GaussianMoments)
{
    Rng r(19);
    double sum = 0.0;
    double sq = 0.0;
    constexpr int kDraws = 100'000;
    for (int i = 0; i < kDraws; ++i) {
        double g = r.nextGaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
    EXPECT_NEAR(sq / kDraws, 1.0, 0.03);
}

TEST(Rng, ZipfZeroSkewIsUniform)
{
    Rng r(23);
    constexpr std::uint64_t kN = 10;
    std::vector<int> counts(kN, 0);
    constexpr int kDraws = 50'000;
    for (int i = 0; i < kDraws; ++i)
        ++counts[r.nextZipf(kN, 0.0)];
    for (int c : counts)
        EXPECT_NEAR(c, kDraws / kN, kDraws / kN * 0.1);
}

TEST(Rng, ZipfSkewFavorsLowRanks)
{
    Rng r(29);
    constexpr std::uint64_t kN = 1000;
    int rank0 = 0;
    int mid = 0;
    constexpr int kDraws = 100'000;
    for (int i = 0; i < kDraws; ++i) {
        auto v = r.nextZipf(kN, 1.0);
        ASSERT_LT(v, kN);
        if (v == 0)
            ++rank0;
        if (v == kN / 2)
            ++mid;
    }
    // Under s=1 Zipf, rank 1 is ~500x more likely than rank 500.
    EXPECT_GT(rank0, mid * 20);
}

TEST(Rng, ZipfHandlesInterleavedParameters)
{
    // The sampler caches (n, s); alternating parameters must not
    // corrupt results.
    Rng r(31);
    for (int i = 0; i < 1000; ++i) {
        ASSERT_LT(r.nextZipf(10, 0.5), 10u);
        ASSERT_LT(r.nextZipf(1000, 1.2), 1000u);
    }
}

TEST(Rng, ShuffleIsAPermutation)
{
    Rng r(37);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto orig = v;
    r.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

} // anonymous namespace
} // namespace memsense
