/**
 * @file
 * Chaos/soak test: the server under sustained load with faults firing
 * probabilistically at every injection site at once.
 *
 * Labeled `soak` in ctest (run via `ctest -L soak` or the default
 * suite — the budget is kept small enough for tier-1). The assertions
 * are the server's survival contract, not specific outcomes:
 *
 *  - the run terminates (no hang) and nothing crashes;
 *  - the server ledger stays consistent — every accepted request got
 *    exactly one reply or one counted write failure;
 *  - the loadgen classified every request it sent;
 *  - after fault::reset(), a clean control batch is all-ok on the same
 *    server instance (no lingering poisoned state).
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "serve/loadgen.hh"
#include "serve/server.hh"
#include "serve/transport.hh"
#include "util/fault_injection.hh"

namespace memsense::serve
{
namespace
{

class ServeSoakTest : public ::testing::Test
{
  protected:
    void TearDown() override { fault::reset(); }
};

TEST_F(ServeSoakTest, SurvivesMixedFaultStormAndStaysConsistent)
{
    ServerOptions opts;
    opts.workers = 3;
    opts.pollMs = 5;
    opts.maxQueueDepth = 16;
    opts.allowStale = true;
    opts.drainDeadlineMs = 500.0;
    Server server(opts);
    auto transport_owned = std::make_unique<InProcessTransport>();
    InProcessTransport *transport = transport_owned.get();
    server.addTransport(std::move(transport_owned));
    server.start();

    // Every site at once, each at a deterministic-but-scattered rate.
    fault::configure("seed=1234;"
                     "server.read:throw:p=0.02;"
                     "server.parse:throw:p=0.05;"
                     "server.enqueue:throw:p=0.05;"
                     "server.solve:throw:p=0.05;"
                     "server.write:throw:p=0.05;"
                     "evaluator.probe:throw:p=0.02;"
                     "evaluator.solve:throw:p=0.1;"
                     "evaluator.insert:throw:p=0.02");

    LoadgenOptions load;
    load.connections = 6;
    load.totalRequests = 400;
    // A mix of shapes: some repeated (cache traffic), some spread
    // (cold solves), one habitually malformed.
    load.fixtures = {
        "{\"workload\":{\"mpki\":10}}",
        "{\"workload\":{\"mpki\":11}}",
        "{\"workload\":{\"mpki\":12},\"platform\":{\"channels\":2}}",
        "{\"workload\":{\"class\":\"enterprise\"}}",
        "{\"workload\":{\"mpki\":-5}}", // out of domain
    };
    load.recvTimeoutMs = 2000;
    load.reconnect.maxAttempts = 8;
    load.reconnect.baseDelayMs = 1.0;
    load.reconnect.maxDelayMs = 10.0;
    Dialer dial = [transport] { return transport->connect().asStream(); };
    const LoadReport storm = runLoadgen(dial, load);

    // Survival: everything sent was classified; the loadgen did not
    // hang or lose requests.
    EXPECT_EQ(storm.classified(), storm.sent);
    EXPECT_GT(storm.sent, 0u);
    // Under this storm some requests must still succeed outright.
    EXPECT_GT(storm.ok, 0u);

    // Clean control on the SAME server: faults off, fresh traffic.
    fault::reset();
    LoadgenOptions clean = load;
    clean.connections = 2;
    clean.totalRequests = 50;
    clean.fixtures = {"{\"workload\":{\"mpki\":13}}",
                      "{\"workload\":{\"mpki\":10}}"};
    const LoadReport control = runLoadgen(dial, clean);
    EXPECT_EQ(control.sent, 50u);
    EXPECT_EQ(control.ok, 50u);
    EXPECT_EQ(control.transportErrors, 0u);

    server.stop();
    const ServerStats stats = server.stats();
    EXPECT_TRUE(stats.consistent()) << stats.describe();
    // The storm's accepted count covers both phases.
    EXPECT_GE(stats.accepted, control.sent);
}

TEST_F(ServeSoakTest, DeadlinePressureUnderDelayFaultsDrainsCleanly)
{
    ServerOptions opts;
    opts.workers = 2;
    opts.pollMs = 5;
    opts.maxQueueDepth = 8;
    opts.defaultDeadlineMs = 20.0;
    opts.drainDeadlineMs = 200.0;
    Server server(opts);
    auto transport_owned = std::make_unique<InProcessTransport>();
    InProcessTransport *transport = transport_owned.get();
    server.addTransport(std::move(transport_owned));
    server.start();

    // Real 30ms stalls inside some solves: with a 20ms default
    // deadline, delayed solves overrun their budget and must be cut
    // at the next cancel poll, not crash or wedge a worker.
    fault::configure("seed=99;server.solve:delay=30:p=0.3");

    LoadgenOptions load;
    load.connections = 4;
    load.totalRequests = 120;
    load.fixtures = {
        "{\"workload\":{\"mpki\":20}}", "{\"workload\":{\"mpki\":21}}",
        "{\"workload\":{\"mpki\":22}}", "{\"workload\":{\"mpki\":23}}",
        "{\"workload\":{\"mpki\":24}}", "{\"workload\":{\"mpki\":25}}",
    };
    load.recvTimeoutMs = 2000;
    Dialer dial = [transport] { return transport->connect().asStream(); };
    const LoadReport report = runLoadgen(dial, load);

    EXPECT_EQ(report.classified(), report.sent);
    EXPECT_EQ(report.sent, 120u);
    EXPECT_GT(report.ok + report.deadlineExceeded, 0u);

    server.stop();
    const ServerStats stats = server.stats();
    EXPECT_TRUE(stats.consistent()) << stats.describe();
}

TEST_F(ServeSoakTest, SkewedClientsUnderQuotasAndBatchFaultsStayLedgered)
{
    // A noisy-neighbor mix (half the traffic from one connection)
    // against tight per-client quotas and batching, with faults firing
    // between batch assembly and the solve. The contract is the same
    // survival ledger: every request classified, every accepted
    // request answered exactly once, and quota sheds landing as their
    // own bucket rather than leaking into overload counts.
    ServerOptions opts;
    opts.workers = 2;
    opts.pollMs = 5;
    opts.maxQueueDepth = 16;
    opts.maxBatch = 8;
    opts.batchLingerMs = 1.0;
    opts.maxQueuePerClient = 2;
    opts.drainDeadlineMs = 500.0;
    Server server(opts);
    auto transport_owned = std::make_unique<InProcessTransport>();
    InProcessTransport *transport = transport_owned.get();
    server.addTransport(std::move(transport_owned));
    server.start();

    fault::configure("seed=77;"
                     "server.batch:throw:p=0.05;"
                     "server.solve:delay=5:p=0.2;"
                     "evaluator.solve:throw:p=0.05");

    LoadgenOptions load;
    load.connections = 4;
    load.totalRequests = 240;
    load.hotClientFraction = 0.5;
    load.fixtures = {
        "{\"workload\":{\"mpki\":30}}",
        "{\"workload\":{\"mpki\":31}}",
        "{\"workload\":{\"mpki\":30},\"platform\":{\"channels\":4}}",
        "{\"workload\":{\"mpki\":32}}",
    };
    load.recvTimeoutMs = 2000;
    Dialer dial = [transport] { return transport->connect().asStream(); };
    const LoadReport report = runLoadgen(dial, load);

    EXPECT_EQ(report.classified(), report.sent);
    EXPECT_EQ(report.sent, 240u);
    EXPECT_EQ(report.hotClientSent, 120u);
    EXPECT_GT(report.ok, 0u);

    server.stop();
    const ServerStats stats = server.stats();
    EXPECT_TRUE(stats.consistent()) << stats.describe();
    // Per-client ledgers cover every connection the run dialed.
    EXPECT_GE(stats.clients.size(), 4u);
    std::uint64_t client_quota_sheds = 0;
    for (const ClientStats &c : stats.clients)
        client_quota_sheds += c.quotaShed;
    EXPECT_EQ(client_quota_sheds, stats.quotaShed);
}

} // anonymous namespace
} // namespace memsense::serve
