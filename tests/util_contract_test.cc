/**
 * @file
 * Tests for the contract layer (util/contract.hh): macro semantics,
 * message formatting, policy switching, and the contracts installed at
 * the model and simulator boundaries.
 */

#include <gtest/gtest.h>

#include <string>

#include "model/cpi_model.hh"
#include "model/paper_data.hh"
#include "model/solver.hh"
#include "sim/cache.hh"
#include "util/contract.hh"
#include "util/error.hh"

namespace memsense
{
namespace
{

/** Restore the default Throw policy even if a test fails mid-way. */
class ContractTest : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        setContractPolicy(ContractPolicy::Throw);
    }
};

TEST_F(ContractTest, PassingContractsAreSilent)
{
    EXPECT_NO_THROW(MS_REQUIRE(1 + 1 == 2));
    EXPECT_NO_THROW(MS_ENSURE(true, "never shown"));
    EXPECT_NO_THROW(MS_INVARIANT(3 > 2, "value ", 3));
}

TEST_F(ContractTest, FailingRequireThrowsContractViolation)
{
    EXPECT_THROW(MS_REQUIRE(false), ContractViolation);
}

TEST_F(ContractTest, ViolationIsALogicErrorNotAConfigError)
{
    // Contracts flag library bugs: they must not be catchable as the
    // user-input ConfigError but must be catchable as LogicError.
    EXPECT_THROW(MS_ENSURE(false), LogicError);
    try {
        MS_INVARIANT(false);
        FAIL() << "contract did not fire";
    } catch (const ConfigError &) {
        FAIL() << "contract fired as ConfigError";
    } catch (const ContractViolation &) {
        SUCCEED();
    }
}

TEST_F(ContractTest, MessageNamesKindExpressionAndLocation)
{
    try {
        int value = 7;
        MS_ENSURE(value < 0, "value ", value, " should be negative");
        FAIL() << "contract did not fire";
    } catch (const ContractViolation &e) {
        std::string what = e.what();
        EXPECT_NE(what.find("postcondition"), std::string::npos) << what;
        EXPECT_NE(what.find("value < 0"), std::string::npos) << what;
        EXPECT_NE(what.find("util_contract_test.cc"), std::string::npos)
            << what;
        EXPECT_NE(what.find("value 7 should be negative"),
                  std::string::npos)
            << what;
    }
}

TEST_F(ContractTest, KindsAreDistinguished)
{
    auto kind_of = [](auto &&fire) {
        try {
            fire();
        } catch (const ContractViolation &e) {
            return std::string(e.what());
        }
        return std::string();
    };
    EXPECT_NE(kind_of([] { MS_REQUIRE(false); }).find("precondition"),
              std::string::npos);
    EXPECT_NE(kind_of([] { MS_ENSURE(false); }).find("postcondition"),
              std::string::npos);
    EXPECT_NE(kind_of([] { MS_INVARIANT(false); }).find("invariant"),
              std::string::npos);
}

TEST_F(ContractTest, PolicyIsSwitchableAndReadable)
{
    EXPECT_EQ(contractPolicy(), ContractPolicy::Throw);
    setContractPolicy(ContractPolicy::Abort);
    EXPECT_EQ(contractPolicy(), ContractPolicy::Abort);
    setContractPolicy(ContractPolicy::Throw);
    EXPECT_EQ(contractPolicy(), ContractPolicy::Throw);
}

TEST_F(ContractTest, AbortPolicyAborts)
{
    EXPECT_DEATH(
        {
            setContractPolicy(ContractPolicy::Abort);
            MS_INVARIANT(false, "death-test message");
        },
        "death-test message");
}

TEST_F(ContractTest, ModelBoundariesHoldOnPaperData)
{
    // The installed postconditions must be silent across the paper's
    // whole operating envelope.
    model::Solver solver;
    for (const auto &p : model::paper::allWorkloadParams()) {
        for (double eff : {0.2, 0.6, 1.0}) {
            model::Platform plat = model::Platform::paperBaseline();
            plat.memory = plat.memory.withEfficiency(eff);
            model::OperatingPoint op;
            EXPECT_NO_THROW(op = solver.solve(p, plat)) << p.name;
            EXPECT_GE(op.cpiEff, p.cpiCache) << p.name;
        }
    }
}

TEST_F(ContractTest, CacheGeometryInvariantHolds)
{
    sim::CacheConfig cfg;
    cfg.sizeBytes = 1 << 20;
    cfg.ways = 16;
    EXPECT_NO_THROW(sim::SetAssocCache("llc", cfg, 1));
}

TEST_F(ContractTest, ChouBlockingFactorContractFires)
{
    // Degenerate Chou inputs drive Eq. 3 above BF = 1 only through a
    // library bug; the inputs below stay legal, so the bound holds.
    model::ChouInputs in;
    in.cpiCache = 1.0;
    in.mlp = 1.0;
    in.overlapCm = 0.0;
    in.mpi = 0.01;
    in.mpCycles = 300.0;
    EXPECT_NO_THROW({
        double bf = model::blockingFactorFromChou(in);
        EXPECT_LE(bf, 1.0);
    });
}

} // anonymous namespace
} // namespace memsense
