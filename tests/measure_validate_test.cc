/**
 * @file
 * Tests for the reusable validation driver (Table 3 generalized with
 * hold-out support).
 */

#include <gtest/gtest.h>

#include "measure/validate.hh"
#include "util/error.hh"
#include "util/log.hh"

namespace memsense::measure
{
namespace
{

ValidationConfig
quickConfig()
{
    ValidationConfig cfg;
    cfg.sweep.coreGhz = {2.1, 2.4, 2.7, 3.1};
    cfg.sweep.memMtPerSec = {1866.7};
    cfg.sweep.warmup = nsToPicos(4'000'000.0);
    cfg.sweep.measure = nsToPicos(700'000.0);
    cfg.sweep.adaptiveWarmup = false;
    cfg.sweep.coresOverride = 2;
    return cfg;
}

TEST(Validate, TrainOnlyMatchesTable3Procedure)
{
    setLogLevel(LogLevel::Warn);
    ValidationResult res = validateModel("column_store", quickConfig());
    EXPECT_TRUE(res.testErrors.empty());
    ASSERT_EQ(res.trainErrors.size(), 4u);
    EXPECT_LT(res.worstTrainError, 0.05);
    EXPECT_EQ(res.workloadId, "column_store");
}

TEST(Validate, HoldOutPredictsUnseenFrequency)
{
    setLogLevel(LogLevel::Warn);
    ValidationConfig cfg = quickConfig();
    cfg.holdOutGhz = {3.1};
    ValidationResult res = validateModel("column_store", cfg);
    ASSERT_EQ(res.trainErrors.size(), 3u);
    ASSERT_EQ(res.testErrors.size(), 1u);
    EXPECT_LT(res.worstTestError, 0.08);
    EXPECT_GT(res.meanAbsTestError(), 0.0);
}

TEST(Validate, RefusesWhenTooFewTrainingPoints)
{
    setLogLevel(LogLevel::Warn);
    ValidationConfig cfg = quickConfig();
    cfg.holdOutGhz = {2.1, 2.4, 2.7};
    EXPECT_THROW(validateModel("column_store", cfg), ConfigError);
}

TEST(Validate, EmptyTestErrorsMeanZero)
{
    ValidationResult res;
    EXPECT_DOUBLE_EQ(res.meanAbsTestError(), 0.0);
}

} // anonymous namespace
} // namespace memsense::measure
