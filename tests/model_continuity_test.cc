/**
 * @file
 * Property tests on solver continuity and regime transitions: CPI
 * must vary smoothly as a platform knob crosses the latency-limited /
 * bandwidth-bound boundary, and the reported regime flag must change
 * exactly where the two limiters cross.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "model/paper_data.hh"
#include "model/solver.hh"

namespace memsense::model
{
namespace
{

/** Sweep a knob finely and bound the largest single-step CPI jump. */
template <typename SetKnob>
double
largestRelativeJump(const WorkloadParams &p, SetKnob &&set_knob,
                    double lo, double hi, int steps)
{
    Solver solver;
    double worst = 0.0;
    double prev = -1.0;
    for (int i = 0; i <= steps; ++i) {
        double x = lo + (hi - lo) * i / steps;
        Platform plat = Platform::paperBaseline();
        set_knob(plat, x);
        double cpi = solver.solve(p, plat).cpiEff;
        if (prev > 0.0)
            worst = std::max(worst, std::abs(cpi - prev) / prev);
        prev = cpi;
    }
    return worst;
}

class RegimeContinuity
    : public ::testing::TestWithParam<WorkloadClass>
{
};

TEST_P(RegimeContinuity, CpiContinuousAcrossEfficiencySweep)
{
    // Sweeping efficiency from 15% to 100% drags every class through
    // its bandwidth knee. Deep in saturation CPI legitimately scales
    // ~1/efficiency (a 1% step at 15% efficiency is a ~7% CPI move),
    // so the bound is relative to the knob's own step size: no jump
    // may exceed the 1/x scaling plus a small continuity margin.
    WorkloadParams p = paper::classParams(GetParam());
    double worst = largestRelativeJump(
        p,
        [](Platform &plat, double eff) {
            plat.memory = plat.memory.withEfficiency(eff);
        },
        0.15, 1.0, 85);
    const double step = (1.0 - 0.15) / 85.0;
    const double knob_scaling = step / 0.15; // worst-case 1/x move
    EXPECT_LT(worst, knob_scaling + 0.02) << className(GetParam());
}

TEST_P(RegimeContinuity, CpiContinuousAcrossLatencySweep)
{
    WorkloadParams p = paper::classParams(GetParam());
    double worst = largestRelativeJump(
        p,
        [](Platform &plat, double ns) {
            plat.memory = plat.memory.withCompulsoryNs(ns);
        },
        20.0, 300.0, 140);
    EXPECT_LT(worst, 0.05) << className(GetParam());
}

TEST_P(RegimeContinuity, BoundFlagFlipsWhereLimitersCross)
{
    // Shrink supply until the workload reports bandwidth bound; at
    // the flip the two limiters must be within a few percent of each
    // other (the max() rule crosses continuously).
    WorkloadParams p = paper::classParams(GetParam());
    Solver solver;
    double prev_cpi = -1.0;
    bool prev_bound = false;
    for (double eff = 1.0; eff >= 0.10; eff -= 0.01) {
        Platform plat = Platform::paperBaseline();
        plat.memory = plat.memory.withEfficiency(eff);
        OperatingPoint op = solver.solve(p, plat);
        if (prev_cpi > 0.0 && op.bandwidthBound && !prev_bound) {
            EXPECT_NEAR(op.cpiEff, prev_cpi, prev_cpi * 0.08)
                << className(GetParam()) << " at efficiency " << eff;
        }
        prev_cpi = op.cpiEff;
        prev_bound = op.bandwidthBound;
    }
}

INSTANTIATE_TEST_SUITE_P(Classes, RegimeContinuity,
                         ::testing::Values(WorkloadClass::Enterprise,
                                           WorkloadClass::BigData,
                                           WorkloadClass::Hpc),
                         [](const auto &param_info) {
                             return param_info.param == WorkloadClass::Hpc
                                        ? std::string("Hpc")
                                    : param_info.param ==
                                              WorkloadClass::BigData
                                        ? std::string("BigData")
                                        : std::string("Enterprise");
                         });

TEST(RegimeTransition, HpcUnbindsOnlyAtExtremeLatency)
{
    // Raising compulsory latency eventually shrinks demand below the
    // supply (the paper's "can eventually make a bandwidth-bound
    // workload become memory bound") — but not within the paper's
    // 75-135 ns range.
    Solver solver;
    WorkloadParams hpc = paper::classParams(WorkloadClass::Hpc);
    bool bound_at_135 = false;
    bool unbound_somewhere = false;
    for (double ns = 75.0; ns <= 1000.0; ns += 5.0) {
        Platform plat = Platform::paperBaseline();
        plat.memory = plat.memory.withCompulsoryNs(ns);
        OperatingPoint op = solver.solve(hpc, plat);
        // memsense-lint: allow(float-equal): exact point on the 5 ns stride
        if (ns == 135.0)
            bound_at_135 = op.bandwidthBound;
        if (!op.bandwidthBound)
            unbound_somewhere = true;
    }
    EXPECT_TRUE(bound_at_135);
    EXPECT_TRUE(unbound_somewhere);
}

TEST(RegimeTransition, UtilizationCappedAtOne)
{
    Solver solver;
    for (const auto &p : paper::classParams()) {
        for (double eff : {0.2, 0.5, 0.7, 1.0}) {
            Platform plat = Platform::paperBaseline();
            plat.memory = plat.memory.withEfficiency(eff);
            OperatingPoint op = solver.solve(p, plat);
            EXPECT_LE(op.utilization, 1.0 + 1e-9) << p.name;
            EXPECT_GE(op.utilization, 0.0) << p.name;
        }
    }
}

} // anonymous namespace
} // namespace memsense::model
