/**
 * @file
 * Property tests over every workload generator: determinism, op-
 * stream sanity, address-arena containment, and per-workload
 * signature checks (op mixes that define each workload's character).
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "workloads/factory.hh"
#include "workloads/latency_checker.hh"
#include "util/error.hh"
#include "workloads/layout.hh"

namespace memsense::workloads
{
namespace
{

/** Summary of the first N ops of a stream. */
struct StreamProfile
{
    std::uint64_t computeInstr = 0;
    std::uint64_t bubbleCycles = 0;
    std::uint64_t idleCycles = 0;
    std::uint64_t loads = 0;
    std::uint64_t dependentLoads = 0;
    std::uint64_t stores = 0;
    std::uint64_t ntStores = 0;
    std::uint64_t streamTagged = 0; ///< ops carrying a stream id
    sim::Addr minAddr = ~sim::Addr{0};
    sim::Addr maxAddr = 0;

    std::uint64_t
    instructions() const
    {
        return computeInstr + loads + stores + ntStores;
    }

    std::uint64_t
    memOps() const
    {
        return loads + stores + ntStores;
    }
};

StreamProfile
profileStream(sim::OpStream &stream, std::uint64_t n = 200'000)
{
    StreamProfile p;
    sim::MicroOp op;
    for (std::uint64_t i = 0; i < n; ++i) {
        if (!stream.next(op))
            break;
        switch (op.kind) {
          case sim::OpKind::Compute:
            p.computeInstr += op.count;
            break;
          case sim::OpKind::Bubble:
            p.bubbleCycles += op.count;
            break;
          case sim::OpKind::Idle:
            p.idleCycles += op.count;
            break;
          case sim::OpKind::Load:
            ++p.loads;
            if (op.dependent)
                ++p.dependentLoads;
            break;
          case sim::OpKind::Store:
            ++p.stores;
            break;
          case sim::OpKind::NtStore:
            ++p.ntStores;
            break;
        }
        if (op.kind == sim::OpKind::Load ||
            op.kind == sim::OpKind::Store ||
            op.kind == sim::OpKind::NtStore) {
            p.minAddr = std::min(p.minAddr, op.addr);
            p.maxAddr = std::max(p.maxAddr, op.addr);
            if (op.stream != 0)
                ++p.streamTagged;
        }
    }
    return p;
}

/** Parameterized over all twelve catalog workloads. */
class EveryWorkload : public ::testing::TestWithParam<std::string>
{
};

TEST_P(EveryWorkload, DeterministicBySeed)
{
    auto a = makeWorkload(GetParam(), 0, 42);
    auto b = makeWorkload(GetParam(), 0, 42);
    sim::MicroOp oa;
    sim::MicroOp ob;
    for (int i = 0; i < 20'000; ++i) {
        ASSERT_TRUE(a->next(oa));
        ASSERT_TRUE(b->next(ob));
        ASSERT_EQ(oa.kind, ob.kind);
        ASSERT_EQ(oa.addr, ob.addr);
        ASSERT_EQ(oa.count, ob.count);
        ASSERT_EQ(oa.dependent, ob.dependent);
    }
}

TEST_P(EveryWorkload, DifferentSeedsDifferentStreams)
{
    auto a = makeWorkload(GetParam(), 0, 1);
    auto b = makeWorkload(GetParam(), 0, 2);
    sim::MicroOp oa;
    sim::MicroOp ob;
    int diff = 0;
    for (int i = 0; i < 20'000; ++i) {
        a->next(oa);
        b->next(ob);
        if (oa.addr != ob.addr)
            ++diff;
    }
    EXPECT_GT(diff, 100);
}

TEST_P(EveryWorkload, CoresHaveDisjointArenas)
{
    auto a = makeWorkload(GetParam(), 0, 1);
    auto b = makeWorkload(GetParam(), 3, 1);
    StreamProfile pa = profileStream(*a, 50'000);
    StreamProfile pb = profileStream(*b, 50'000);
    EXPECT_TRUE(pa.maxAddr < pb.minAddr || pb.maxAddr < pa.minAddr)
        << GetParam();
}

TEST_P(EveryWorkload, ProducesAllInstructionActivity)
{
    auto w = makeWorkload(GetParam(), 0, 5);
    StreamProfile p = profileStream(*w);
    EXPECT_GT(p.instructions(), 10'000u) << GetParam();
    EXPECT_GT(p.memOps(), 100u) << GetParam();
    EXPECT_GT(p.computeInstr, 0u) << GetParam();
}

TEST_P(EveryWorkload, AddressesStayWithinTheCoreArena)
{
    auto w = makeWorkload(GetParam(), 2, 5);
    StreamProfile p = profileStream(*w, 100'000);
    const sim::Addr arena_base =
        (sim::Addr{1} << 44) + 2 * (sim::Addr{1} << 42);
    EXPECT_GE(p.minAddr, arena_base) << GetParam();
    EXPECT_LT(p.maxAddr, arena_base + (sim::Addr{1} << 42))
        << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, EveryWorkload,
    ::testing::Values("column_store", "nits", "proximity", "spark",
                      "oltp", "jvm", "virtualization", "web_caching",
                      "bwaves", "milc", "soplex", "wrf"),
    [](const auto &p) { return p.param; });

TEST(WorkloadSignatures, NitsWritesNonTemporally)
{
    auto w = makeWorkload("nits", 0, 1);
    StreamProfile p = profileStream(*w);
    EXPECT_GT(p.ntStores, p.loads) << "NITS WBR must exceed 100%";
}

TEST(WorkloadSignatures, ProximityIsComputeHeavy)
{
    auto w = makeWorkload("proximity", 0, 1);
    StreamProfile p = profileStream(*w);
    // An order of magnitude fewer memory ops per instruction than the
    // scanning workloads.
    double mem_per_instr =
        static_cast<double>(p.memOps()) /
        static_cast<double>(p.instructions());
    EXPECT_LT(mem_per_instr, 0.05);
    EXPECT_GT(p.bubbleCycles, 0u);
}

TEST(WorkloadSignatures, SparkHasIdleGapsAndPhases)
{
    auto w = makeWorkload("spark", 0, 1);
    StreamProfile p = profileStream(*w);
    EXPECT_GT(p.idleCycles, 0u); // task-scheduling gaps (util < 100%)
    EXPECT_GT(p.dependentLoads, 0u);
    EXPECT_GT(p.stores, 0u);
}

TEST(WorkloadSignatures, HpcKernelsAreStreamTagged)
{
    for (const char *id : {"bwaves", "milc", "soplex", "wrf"}) {
        auto w = makeWorkload(id, 0, 1);
        StreamProfile p = profileStream(*w, 50'000);
        // Most accesses belong to prefetchable streams.
        EXPECT_GT(p.streamTagged, p.memOps() / 2) << id;
    }
}

TEST(WorkloadSignatures, EnterpriseIsDependentHeavy)
{
    for (const char *id : {"oltp", "web_caching", "virtualization"}) {
        auto w = makeWorkload(id, 0, 1);
        StreamProfile p = profileStream(*w);
        double dep_frac = static_cast<double>(p.dependentLoads) /
                          static_cast<double>(p.loads);
        EXPECT_GT(dep_frac, 0.25) << id;
    }
}

TEST(WorkloadSignatures, WebCachingIdlesHalfTheTime)
{
    auto w = makeWorkload("web_caching", 0, 1);
    StreamProfile p = profileStream(*w);
    EXPECT_GT(p.idleCycles, 0u);
}

TEST(LatencyChecker, ProbeChasesDependently)
{
    LatencyCheckerConfig cfg;
    cfg.role = MlcRole::LatencyProbe;
    LatencyCheckerWorkload w(cfg);
    StreamProfile p = profileStream(w, 10'000);
    EXPECT_EQ(p.dependentLoads, p.loads);
    EXPECT_EQ(p.ntStores, 0u);
}

TEST(LatencyChecker, GeneratorHonorsMixAndDelay)
{
    LatencyCheckerConfig cfg;
    cfg.role = MlcRole::BandwidthGen;
    cfg.readFraction = 0.67;
    cfg.delayCycles = 32;
    LatencyCheckerWorkload w(cfg);
    StreamProfile p = profileStream(w, 30'000);
    double reads = static_cast<double>(p.loads);
    double writes = static_cast<double>(p.ntStores);
    EXPECT_NEAR(reads / (reads + writes), 0.67, 0.03);
    EXPECT_EQ(p.dependentLoads, 0u);
    EXPECT_GT(p.bubbleCycles, 0u);
}

TEST(Layout, RegionsAreDisjointAndAligned)
{
    AddressSpace arena(sim::Addr{1} << 40);
    Region a = arena.allocate("a", 100);
    Region b = arena.allocate("b", 5'000'000);
    EXPECT_GE(b.base, a.base + a.bytes);
    EXPECT_EQ(a.bytes % (2ULL << 20), 0u);
    EXPECT_EQ(arena.regions().size(), 2u);
    EXPECT_THROW(arena.allocate("bad", 0), ConfigError);
    EXPECT_THROW(a.lineAddr(a.lines()), LogicError);
}

} // anonymous namespace
} // namespace memsense::workloads
