/**
 * @file
 * Tests for the load-generator engine.
 *
 * The loadgen's seams — the Dialer, the clock, and the backoff sleeper
 * — are all injected here: it dials in-process servers (real Server
 * instances or tiny scripted fakes), time advances only when observed,
 * and backoff sleeps land in a recorder instead of the scheduler. That
 * makes reply classification, reconnect backoff, give-up bounds, and
 * percentile math all deterministic.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/loadgen.hh"
#include "serve/server.hh"
#include "serve/transport.hh"

namespace memsense::serve
{
namespace
{

/** A real server on an in-process transport, dialable by the loadgen. */
struct LoopbackServer
{
    InProcessTransport *transport = nullptr;
    std::unique_ptr<Server> server;

    explicit LoopbackServer(ServerOptions opts = {})
    {
        opts.pollMs = 5;
        server = std::make_unique<Server>(std::move(opts));
        auto t = std::make_unique<InProcessTransport>();
        transport = t.get();
        server->addTransport(std::move(t));
        server->start();
    }

    Dialer
    dialer()
    {
        return [this] { return transport->connect().asStream(); };
    }
};

/** A scripted fake: replies to each request with the next canned line. */
struct ScriptedServer
{
    explicit ScriptedServer(std::vector<std::string> script_in)
        : script(std::move(script_in))
    {
        serverThread = std::thread([this] { serve(); });
    }

    ~ScriptedServer()
    {
        transport.shutdownTransport();
        serverThread.join();
    }

    Dialer
    dialer()
    {
        return [this] { return transport.connect().asStream(); };
    }

  private:
    void
    serve()
    {
        std::vector<std::unique_ptr<LineStream>> streams;
        std::size_t cursor = 0;
        for (;;) {
            std::unique_ptr<LineStream> conn;
            const Transport::Accept a = transport.accept(conn, 5);
            if (a == Transport::Accept::Closed)
                return;
            if (a == Transport::Accept::Conn)
                streams.push_back(std::move(conn));
            for (auto &s : streams) {
                std::string line;
                while (s->readLine(line, 1) == LineStream::Read::Line) {
                    s->writeLine(script[cursor % script.size()]);
                    ++cursor;
                }
            }
        }
    }

    InProcessTransport transport;
    std::vector<std::string> script;
    std::thread serverThread;
};

TEST(LoadgenRequestLine, InjectsIdAndDeadlineAheadOfFixtureKeys)
{
    const std::string line = loadgenRequestLine(
        "{\"id\":\"fixture\",\"workload\":{\"mpki\":9}}", 7, 50.0);
    EXPECT_EQ(line.find("{\"id\":\"lg-7\",\"deadline_ms\":50,"), 0u)
        << line;
    // First key wins in the request parser: the fixture's own id is
    // shadowed, not duplicated into the reply.
    EXPECT_NE(line.find("\"id\":\"fixture\""), std::string::npos);
}

TEST(LoadgenRequestLine, EmptyObjectNeedsNoComma)
{
    EXPECT_EQ(loadgenRequestLine("{}", 0, 0.0), "{\"id\":\"lg-0\"}");
    EXPECT_EQ(loadgenRequestLine("{ }", 1, 0.0), "{\"id\":\"lg-1\" }");
}

TEST(LoadgenRun, MalformedFixtureIsACleanConfigErrorUpFront)
{
    // Regression: a fixture with no JSON object used to throw inside a
    // connection thread (= std::terminate). validate() must catch it
    // on the caller's thread before any thread spawns.
    LoadgenOptions opts;
    opts.fixtures = {"{\"workload\":{}}", "not json at all"};
    Dialer never = []() -> std::unique_ptr<LineStream> {
        ADD_FAILURE() << "dialed before fixture validation";
        return nullptr;
    };
    EXPECT_THROW(runLoadgen(never, opts), ConfigError);
}

TEST(LoadgenRun, AllRepliesClassifiedAgainstARealServer)
{
    LoopbackServer lb;
    LoadgenOptions opts;
    opts.connections = 4;
    opts.totalRequests = 80;
    opts.fixtures = {"{\"workload\":{\"mpki\":10}}",
                     "{\"workload\":{\"mpki\":11}}",
                     "{\"workload\":{\"mpki\":12}}"};
    const LoadReport report = runLoadgen(lb.dialer(), opts);
    EXPECT_EQ(report.sent, 80u);
    EXPECT_EQ(report.ok, 80u);
    EXPECT_EQ(report.classified(), report.sent);
    EXPECT_EQ(report.transportErrors, 0u);
    lb.server->stop();
    const ServerStats stats = lb.server->stats();
    EXPECT_EQ(stats.accepted, 80u);
    EXPECT_TRUE(stats.consistent());
    // 3 unique fixture shapes: a handful of full solves (connections
    // can race the first insert), everything else from the cache.
    EXPECT_GE(stats.solved, 3u);
    EXPECT_EQ(stats.solved + stats.cacheHits, 80u);
}

TEST(LoadgenRun, ClassifiesEveryReplyShape)
{
    ScriptedServer fake({
        "{\"id\":\"a\",\"ok\":true,\"op\":{}}",
        "{\"id\":\"b\",\"degraded\":true,\"ok\":true,\"op\":{}}",
        "{\"id\":\"c\",\"ok\":false,\"error\":{\"type\":\"overloaded\","
        "\"message\":\"m\",\"fatal\":false,\"attempts\":0}}",
        "{\"id\":\"d\",\"ok\":false,\"error\":{\"type\":"
        "\"deadline_exceeded\",\"message\":\"m\",\"fatal\":false,"
        "\"attempts\":0}}",
        "{\"id\":\"e\",\"ok\":false,\"error\":{\"type\":\"ConfigError\","
        "\"message\":\"m\",\"fatal\":true,\"attempts\":0}}",
        "this is not even json",
    });
    LoadgenOptions opts;
    opts.connections = 1; // keep the canned order aligned
    opts.totalRequests = 6;
    opts.fixtures = {"{\"workload\":{}}"};
    const LoadReport report = runLoadgen(fake.dialer(), opts);
    EXPECT_EQ(report.sent, 6u);
    EXPECT_EQ(report.ok, 1u);
    EXPECT_EQ(report.degraded, 1u);
    EXPECT_EQ(report.overloaded, 1u);
    EXPECT_EQ(report.deadlineExceeded, 1u);
    EXPECT_EQ(report.otherErrors, 2u); // ConfigError + unparseable
    EXPECT_EQ(report.classified(), report.sent);
    EXPECT_DOUBLE_EQ(report.shedRate(), 2.0 / 6.0);
}

TEST(LoadgenRun, ReconnectsUnderBoundedBackoff)
{
    LoopbackServer lb;
    int dials = 0;
    std::vector<double> sleeps;
    Dialer flaky = [&]() -> std::unique_ptr<LineStream> {
        ++dials;
        if (dials <= 2)
            throw ConfigError("connection refused (test)");
        return lb.transport->connect().asStream();
    };
    LoadgenOptions opts;
    opts.connections = 1;
    opts.totalRequests = 3;
    opts.fixtures = {"{\"workload\":{\"mpki\":13}}"};
    opts.reconnect.maxAttempts = 4;
    opts.reconnect.baseDelayMs = 10.0;
    opts.reconnect.multiplier = 2.0;
    opts.reconnect.jitterFrac = 0.0;
    opts.sleepMs = [&sleeps](double ms) { sleeps.push_back(ms); };
    const LoadReport report = runLoadgen(flaky, opts);
    EXPECT_EQ(report.sent, 3u);
    EXPECT_EQ(report.ok, 3u);
    EXPECT_EQ(report.dialFailures, 2u);
    // Two failed dials -> two deterministic backoff waits: 10, 20.
    ASSERT_EQ(sleeps.size(), 2u);
    EXPECT_DOUBLE_EQ(sleeps[0], 10.0);
    EXPECT_DOUBLE_EQ(sleeps[1], 20.0);
    lb.server->stop();
}

TEST(LoadgenRun, GivesUpAfterTheDialBudgetWithoutHanging)
{
    Dialer dead = []() -> std::unique_ptr<LineStream> {
        throw ConfigError("connection refused (test)");
    };
    LoadgenOptions opts;
    opts.connections = 2;
    opts.totalRequests = 10;
    opts.fixtures = {"{\"workload\":{}}"};
    opts.reconnect.maxAttempts = 3;
    opts.sleepMs = [](double) {};
    const LoadReport report = runLoadgen(dead, opts);
    EXPECT_EQ(report.sent, 0u);
    EXPECT_EQ(report.dialFailures, 6u); // 3 attempts x 2 connections
    EXPECT_EQ(report.classified(), 0u);
}

TEST(LoadgenRun, DroppedConnectionIsRetriedAndCounted)
{
    LoopbackServer lb;
    int dials = 0;
    // First connection dies immediately (shutdown before use); the
    // redial lands on the real server.
    Dialer flaky = [&]() -> std::unique_ptr<LineStream> {
        ++dials;
        auto stream = lb.transport->connect().asStream();
        if (dials == 1)
            stream->shutdownStream();
        return stream;
    };
    LoadgenOptions opts;
    opts.connections = 1;
    opts.totalRequests = 4;
    opts.fixtures = {"{\"workload\":{\"mpki\":14}}"};
    opts.sleepMs = [](double) {};
    opts.recvTimeoutMs = 2000;
    const LoadReport report = runLoadgen(flaky, opts);
    EXPECT_EQ(report.sent, 4u);
    EXPECT_EQ(report.transportErrors, 1u);
    EXPECT_EQ(report.ok, 3u);
    EXPECT_EQ(report.reconnects, 1u);
    EXPECT_EQ(report.classified(), report.sent);
    lb.server->stop();
}

TEST(LoadgenRun, LatencyPercentilesComeFromTheInjectedClock)
{
    LoopbackServer lb;
    LoadgenOptions opts;
    opts.connections = 1;
    opts.totalRequests = 10;
    opts.fixtures = {"{\"workload\":{\"mpki\":15}}"};
    // Every clock observation advances 1ms; each request observes the
    // clock twice (send, reply), so every latency is exactly 1ms.
    auto t = std::make_shared<double>(0.0);
    opts.nowMs = [t] {
        *t += 1.0;
        return *t;
    };
    const LoadReport report = runLoadgen(lb.dialer(), opts);
    EXPECT_EQ(report.ok, 10u);
    EXPECT_DOUBLE_EQ(report.p50Ms, 1.0);
    EXPECT_DOUBLE_EQ(report.p99Ms, 1.0);
    lb.server->stop();
}

TEST(LoadgenRun, OpenLoopPacingSleepsTowardTheTargetRate)
{
    LoopbackServer lb;
    LoadgenOptions opts;
    opts.connections = 1;
    opts.totalRequests = 5;
    opts.fixtures = {"{\"workload\":{\"mpki\":16}}"};
    opts.targetRatePerSec = 100.0; // one request per 10ms
    // Frozen clock: every request is "early", so pacing must sleep
    // exactly the schedule offsets 0, 10, 20, 30, 40.
    opts.nowMs = [] { return 0.0; };
    std::vector<double> sleeps;
    opts.sleepMs = [&sleeps](double ms) { sleeps.push_back(ms); };
    const LoadReport report = runLoadgen(lb.dialer(), opts);
    EXPECT_EQ(report.sent, 5u);
    ASSERT_EQ(sleeps.size(), 4u); // index 0 is due immediately
    EXPECT_DOUBLE_EQ(sleeps[0], 10.0);
    EXPECT_DOUBLE_EQ(sleeps[3], 40.0);
    lb.server->stop();
}

TEST(LoadgenPercentile, NearestRankHandlesTinySampleSets)
{
    // Nearest-rank: rank ceil(p * n) clamped to [1, n], no
    // interpolation. The old (p * (n-1))-index form understated tails
    // and had nothing sane to say about 0 or 1 samples.
    const std::vector<double> none;
    EXPECT_DOUBLE_EQ(percentileNearestRank(none, 0.50), 0.0);
    EXPECT_DOUBLE_EQ(percentileNearestRank(none, 0.99), 0.0);
    const std::vector<double> one = {7.5};
    EXPECT_DOUBLE_EQ(percentileNearestRank(one, 0.0), 7.5);
    EXPECT_DOUBLE_EQ(percentileNearestRank(one, 0.50), 7.5);
    EXPECT_DOUBLE_EQ(percentileNearestRank(one, 0.99), 7.5);
    const std::vector<double> two = {1.0, 2.0};
    EXPECT_DOUBLE_EQ(percentileNearestRank(two, 0.50), 1.0);
    EXPECT_DOUBLE_EQ(percentileNearestRank(two, 0.99), 2.0);
    std::vector<double> ten;
    for (int i = 1; i <= 10; ++i)
        ten.push_back(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(percentileNearestRank(ten, 0.50), 5.0);
    // p99 of a full set is the largest sample, never an index past
    // the end — and never the second-largest.
    EXPECT_DOUBLE_EQ(percentileNearestRank(ten, 0.99), 10.0);
    EXPECT_DOUBLE_EQ(percentileNearestRank(ten, 1.0), 10.0);
    EXPECT_DOUBLE_EQ(percentileNearestRank(ten, 0.0), 1.0);
}

TEST(LoadgenRun, ReplylessRunReportsZeroLatencySamples)
{
    // When nothing ever replied there are no latencies; the report
    // must say so (latencySamples == 0) instead of dressing the 0.0
    // placeholders up as measured percentiles.
    Dialer dead = []() -> std::unique_ptr<LineStream> {
        throw ConfigError("connection refused (test)");
    };
    LoadgenOptions opts;
    opts.connections = 1;
    opts.totalRequests = 4;
    opts.fixtures = {"{\"workload\":{}}"};
    opts.reconnect.maxAttempts = 2;
    opts.sleepMs = [](double) {};
    const LoadReport report = runLoadgen(dead, opts);
    EXPECT_EQ(report.latencySamples, 0u);
    EXPECT_DOUBLE_EQ(report.p50Ms, 0.0);
    EXPECT_DOUBLE_EQ(report.p99Ms, 0.0);
    const std::string json = report.toJson();
    EXPECT_NE(json.find("\"latency_samples\":0"), std::string::npos)
        << json;
}

TEST(LoadgenRun, QuotaExceededRepliesGetTheirOwnBucket)
{
    ScriptedServer fake({
        "{\"id\":\"a\",\"ok\":true,\"op\":{}}",
        "{\"id\":\"b\",\"ok\":false,\"error\":{\"type\":"
        "\"quota_exceeded\",\"message\":\"client c#1 over quota\","
        "\"fatal\":false,\"attempts\":0}}",
    });
    LoadgenOptions opts;
    opts.connections = 1;
    opts.totalRequests = 4;
    opts.fixtures = {"{\"workload\":{}}"};
    const LoadReport report = runLoadgen(fake.dialer(), opts);
    EXPECT_EQ(report.sent, 4u);
    EXPECT_EQ(report.ok, 2u);
    EXPECT_EQ(report.quotaExceeded, 2u);
    EXPECT_EQ(report.otherErrors, 0u);
    EXPECT_EQ(report.classified(), report.sent);
    EXPECT_EQ(report.latencySamples, 4u);
    const std::string json = report.toJson();
    EXPECT_NE(json.find("\"quota_exceeded\":2"), std::string::npos)
        << json;
}

TEST(LoadgenRun, HotClientSkewPartitionsRequestsDeterministically)
{
    LoopbackServer lb;
    LoadgenOptions opts;
    opts.connections = 3;
    opts.totalRequests = 30;
    opts.hotClientFraction = 0.5;
    opts.fixtures = {"{\"workload\":{\"mpki\":17}}",
                     "{\"workload\":{\"mpki\":18}}"};
    const LoadReport report = runLoadgen(lb.dialer(), opts);
    // Connection 0 owns exactly the hot half of the index space; the
    // other two connections share the rest. Nothing is sent twice and
    // nothing is dropped.
    EXPECT_EQ(report.sent, 30u);
    EXPECT_EQ(report.hotClientSent, 15u);
    EXPECT_EQ(report.ok, 30u);
    EXPECT_EQ(report.classified(), report.sent);
    lb.server->stop();
    const ServerStats stats = lb.server->stats();
    EXPECT_EQ(stats.accepted, 30u);
    EXPECT_TRUE(stats.consistent());
}

} // anonymous namespace
} // namespace memsense::serve
