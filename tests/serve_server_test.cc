/**
 * @file
 * Tests for the fault-tolerant evaluation server.
 *
 * Driven almost entirely over the in-process transport so the full
 * accept/read/admit/solve/reply/drain machinery runs with zero kernel
 * dependencies, plus socket round-trips that skip cleanly when the
 * sandbox forbids binding. Deadline behaviour is tested with an
 * auto-advancing injected clock (every observation moves time forward
 * by a fixed step), so deadline-in-queue and deadline-mid-solve are
 * deterministic rather than sleep-raced; queue-pressure behaviour is
 * forced with `delay`-kind injected faults that hold the single worker
 * busy while requests pile up behind it.
 *
 * The invariant asserted everywhere: every accepted request gets
 * exactly one reply — ServerStats::consistent() — no matter which
 * fault, shed, deadline, or drain path it took.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.hh"
#include "serve/transport.hh"
#include "util/fault_injection.hh"
#include "util/socket.hh"

namespace memsense::serve
{
namespace
{

/** Server + its in-process transport, wired for one test. */
struct TestServer
{
    InProcessTransport *transport = nullptr;
    std::unique_ptr<Server> server;

    explicit TestServer(ServerOptions opts = {})
    {
        server = std::make_unique<Server>(std::move(opts));
        auto t = std::make_unique<InProcessTransport>();
        transport = t.get();
        server->addTransport(std::move(t));
        server->start();
    }
};

/** Fast server options for tests (tight poll, quick drain). */
ServerOptions
testOptions()
{
    ServerOptions opts;
    opts.pollMs = 5;
    opts.drainDeadlineMs = 200.0;
    return opts;
}

/** A clock that advances stepMs on every observation. */
std::function<double()>
autoAdvancingClock(double step_ms)
{
    auto t = std::make_shared<double>(0.0);
    return [t, step_ms] {
        *t += step_ms;
        return *t;
    };
}

std::string
coldRequest(const char *id, double mpki)
{
    return std::string("{\"id\":\"") + id +
           "\",\"workload\":{\"mpki\":" + std::to_string(mpki) + "}}";
}

/** Receive one line or fail the test. */
std::string
mustRecv(InProcessClient &client, int timeout_ms = 5000)
{
    std::string line;
    const LineStream::Read r = client.recv(line, timeout_ms);
    EXPECT_EQ(r, LineStream::Read::Line) << "no reply within budget";
    return line;
}

/** Spin until @p pred holds or ~2s of real time passes. */
template <typename Pred>
bool
spinUntil(Pred pred)
{
    for (int i = 0; i < 400; ++i) {
        if (pred())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return pred();
}

class ServeServerTest : public ::testing::Test
{
  protected:
    void TearDown() override { fault::reset(); }
};

TEST_F(ServeServerTest, StartStopWithoutTrafficIsClean)
{
    TestServer ts(testOptions());
    ts.server->stop();
    ts.server->stop(); // idempotent
    const ServerStats stats = ts.server->stats();
    EXPECT_EQ(stats.accepted, 0u);
    EXPECT_TRUE(stats.consistent());
}

TEST_F(ServeServerTest, EveryRequestGetsExactlyOneReply)
{
    TestServer ts(testOptions());
    InProcessClient client = ts.transport->connect();
    client.send(coldRequest("r1", 10.0));
    client.send(coldRequest("r2", 11.0));
    client.send(coldRequest("r3", 10.0)); // dup of r1's params
    std::vector<std::string> replies;
    for (int i = 0; i < 3; ++i)
        replies.push_back(mustRecv(client));
    for (const std::string &r : replies)
        EXPECT_NE(r.find("\"ok\":true"), std::string::npos) << r;
    ts.server->stop();
    const ServerStats stats = ts.server->stats();
    EXPECT_EQ(stats.accepted, 3u);
    EXPECT_EQ(stats.repliesOk, 3u);
    EXPECT_TRUE(stats.consistent());
}

TEST_F(ServeServerTest, CacheHitsAreServedInlineOnTheReaderThread)
{
    TestServer ts(testOptions());
    InProcessClient client = ts.transport->connect();
    client.send(coldRequest("cold", 12.0));
    const std::string first = mustRecv(client);
    client.send(coldRequest("warm", 12.0));
    const std::string second = mustRecv(client);
    EXPECT_NE(second.find("\"ok\":true"), std::string::npos);
    ts.server->stop();
    const ServerStats stats = ts.server->stats();
    EXPECT_EQ(stats.cacheHits, 1u);
    EXPECT_EQ(stats.solved, 1u);
    // The hit and the solve must agree byte-for-byte past the id.
    EXPECT_EQ(first.substr(first.find("\"op\"")),
              second.substr(second.find("\"op\"")));
}

TEST_F(ServeServerTest, MalformedLineGetsATypedErrorReply)
{
    TestServer ts(testOptions());
    InProcessClient client = ts.transport->connect();
    client.send("this is not json");
    const std::string reply = mustRecv(client);
    EXPECT_NE(reply.find("\"ok\":false"), std::string::npos) << reply;
    EXPECT_NE(reply.find("\"id\":\"line-1\""), std::string::npos)
        << reply;
    EXPECT_NE(reply.find("\"fatal\":true"), std::string::npos) << reply;
    // The connection survives a bad line; the next request works.
    client.send(coldRequest("after", 13.0));
    EXPECT_NE(mustRecv(client).find("\"ok\":true"), std::string::npos);
    ts.server->stop();
    EXPECT_TRUE(ts.server->stats().consistent());
}

TEST_F(ServeServerTest, DeadlineExpiredWhileQueuedIsRefusedCheaply)
{
    ServerOptions opts = testOptions();
    // Every clock observation advances 1s, so a 10ms budget taken at
    // enqueue has always expired by the worker's dequeue check.
    opts.nowMs = autoAdvancingClock(1000.0);
    TestServer ts(opts);
    InProcessClient client = ts.transport->connect();
    client.send("{\"id\":\"dl\",\"deadline_ms\":10,"
                "\"workload\":{\"mpki\":14}}");
    const std::string reply = mustRecv(client);
    EXPECT_NE(reply.find("\"type\":\"deadline_exceeded\""),
              std::string::npos)
        << reply;
    EXPECT_NE(reply.find("while queued"), std::string::npos) << reply;
    EXPECT_NE(reply.find("\"fatal\":false"), std::string::npos) << reply;
    ts.server->stop();
    const ServerStats stats = ts.server->stats();
    EXPECT_EQ(stats.deadlineExceeded, 1u);
    EXPECT_EQ(stats.solved, 0u);
    EXPECT_TRUE(stats.consistent());
}

TEST_F(ServeServerTest, DeadlineCutsASolveMidFlightCooperatively)
{
    ServerOptions opts = testOptions();
    // Budget 1500ms, step 1000ms: the dequeue check survives (enqueue
    // t=1000 -> deadline 2500, dequeue t=2000) and the first solver
    // cancel poll (t=3000) fires — the cooperative mid-solve path.
    opts.nowMs = autoAdvancingClock(1000.0);
    TestServer ts(opts);
    InProcessClient client = ts.transport->connect();
    client.send("{\"id\":\"mid\",\"deadline_ms\":1500,"
                "\"workload\":{\"mpki\":15}}");
    const std::string reply = mustRecv(client);
    EXPECT_NE(reply.find("\"type\":\"deadline_exceeded\""),
              std::string::npos)
        << reply;
    EXPECT_NE(reply.find("mid-solve"), std::string::npos) << reply;
    ts.server->stop();
    const ServerStats stats = ts.server->stats();
    EXPECT_EQ(stats.deadlineExceeded, 1u);
    EXPECT_TRUE(stats.consistent());
}

TEST_F(ServeServerTest, QueueOverflowShedsWithOverloadedError)
{
    ServerOptions opts = testOptions();
    opts.workers = 1;
    opts.maxQueueDepth = 1;
    TestServer ts(opts);
    // Hold the single worker inside its first solve for 400ms.
    fault::configure("server.solve:delay=400:count=1");
    InProcessClient client = ts.transport->connect();
    client.send(coldRequest("busy", 20.0));
    ASSERT_TRUE(spinUntil([] {
        return fault::fireCount("server.solve") >= 1;
    })) << "worker never picked up the blocking request";
    client.send(coldRequest("queued", 21.0));
    // Give the reader a beat to enqueue "queued" before overflowing.
    ASSERT_TRUE(spinUntil([&ts] {
        return ts.server->stats().accepted >= 2;
    }));
    client.send(coldRequest("shed", 22.0));
    // The shed reply arrives first (reader thread, no queue wait).
    const std::string shed_reply = mustRecv(client);
    EXPECT_NE(shed_reply.find("\"type\":\"overloaded\""),
              std::string::npos)
        << shed_reply;
    EXPECT_NE(shed_reply.find("queue full"), std::string::npos)
        << shed_reply;
    // The blocked and queued solves still complete.
    EXPECT_NE(mustRecv(client).find("\"ok\":true"), std::string::npos);
    EXPECT_NE(mustRecv(client).find("\"ok\":true"), std::string::npos);
    ts.server->stop();
    const ServerStats stats = ts.server->stats();
    EXPECT_EQ(stats.shed, 1u);
    EXPECT_EQ(stats.solved, 2u);
    EXPECT_TRUE(stats.consistent());
}

TEST_F(ServeServerTest, ShedRequestsCanBeServedStaleAndDegraded)
{
    ServerOptions opts = testOptions();
    opts.workers = 1;
    opts.maxQueueDepth = 1;
    opts.allowStale = true;
    TestServer ts(opts);
    InProcessClient client = ts.transport->connect();
    // Warm the coarse stale cache with a full solve near mpki=10.
    client.send("{\"id\":\"warm\",\"workload\":{\"mpki\":10.0001}}");
    EXPECT_NE(mustRecv(client).find("\"ok\":true"), std::string::npos);
    // Now jam the worker and fill the queue.
    fault::configure("server.solve:delay=400:count=1");
    client.send(coldRequest("busy", 30.0));
    ASSERT_TRUE(spinUntil([] {
        return fault::fireCount("server.solve") >= 1;
    }));
    client.send(coldRequest("queued", 31.0));
    ASSERT_TRUE(spinUntil([&ts] {
        return ts.server->stats().accepted >= 3;
    }));
    // Same coarse key as the warm solve, different exact fingerprint:
    // shed, but answerable stale.
    client.send("{\"id\":\"stale-ok\",\"workload\":{\"mpki\":10.0002}}");
    const std::string degraded = mustRecv(client);
    EXPECT_NE(degraded.find("\"degraded\":true"), std::string::npos)
        << degraded;
    EXPECT_NE(degraded.find("\"ok\":true"), std::string::npos)
        << degraded;
    // The same shape opting out of staleness gets the overload error.
    client.send("{\"id\":\"no-stale\",\"allow_stale\":false,"
                "\"workload\":{\"mpki\":10.0003}}");
    const std::string refused = mustRecv(client);
    EXPECT_NE(refused.find("\"type\":\"overloaded\""), std::string::npos)
        << refused;
    // Drain the two slow solves.
    EXPECT_NE(mustRecv(client).find("\"ok\":true"), std::string::npos);
    EXPECT_NE(mustRecv(client).find("\"ok\":true"), std::string::npos);
    ts.server->stop();
    const ServerStats stats = ts.server->stats();
    EXPECT_EQ(stats.staleServed, 1u);
    EXPECT_EQ(stats.shed, 2u);
    EXPECT_TRUE(stats.consistent());
}

TEST_F(ServeServerTest, DrainDeadlineFlushesQueuedWorkAsOverloaded)
{
    ServerOptions opts = testOptions();
    opts.workers = 1;
    opts.drainDeadlineMs = 50.0;
    TestServer ts(opts);
    fault::configure("server.solve:delay=400:count=1");
    InProcessClient client = ts.transport->connect();
    client.send(coldRequest("busy", 40.0));
    ASSERT_TRUE(spinUntil([] {
        return fault::fireCount("server.solve") >= 1;
    }));
    client.send(coldRequest("q1", 41.0));
    client.send(coldRequest("q2", 42.0));
    ASSERT_TRUE(spinUntil([&ts] {
        return ts.server->stats().accepted >= 3;
    }));
    // Stop: the 50ms drain budget expires inside the worker's 400ms
    // stall, so q1/q2 are flushed as "server draining".
    ts.server->stop();
    const ServerStats stats = ts.server->stats();
    EXPECT_EQ(stats.drained, 2u);
    EXPECT_EQ(stats.solved, 1u);
    EXPECT_TRUE(stats.consistent());
    int ok = 0;
    int draining = 0;
    for (int i = 0; i < 3; ++i) {
        const std::string reply = mustRecv(client);
        if (reply.find("\"ok\":true") != std::string::npos)
            ++ok;
        if (reply.find("server draining") != std::string::npos)
            ++draining;
    }
    EXPECT_EQ(ok, 1);
    EXPECT_EQ(draining, 2);
}

TEST_F(ServeServerTest, ConnectionLimitShedsTheExcessConnection)
{
    ServerOptions opts = testOptions();
    opts.maxConnections = 1;
    TestServer ts(opts);
    InProcessClient first = ts.transport->connect();
    first.send(coldRequest("keep", 50.0));
    EXPECT_NE(mustRecv(first).find("\"ok\":true"), std::string::npos);
    InProcessClient second = ts.transport->connect();
    const std::string refused = mustRecv(second);
    EXPECT_NE(refused.find("connection limit"), std::string::npos)
        << refused;
    // The first connection keeps working.
    first.send(coldRequest("still", 51.0));
    EXPECT_NE(mustRecv(first).find("\"ok\":true"), std::string::npos);
    ts.server->stop();
    const ServerStats stats = ts.server->stats();
    EXPECT_EQ(stats.connectionsShed, 1u);
    EXPECT_EQ(stats.connections, 1u);
    EXPECT_TRUE(stats.consistent());
}

TEST_F(ServeServerTest, OversizedLineIsRefusedAndConnectionDropped)
{
    ServerOptions opts = testOptions();
    TestServer ts(opts);
    // The in-process transport has no byte cap (its lines arrive
    // pre-framed), so exercise the fd-backed stream's cap directly
    // through a socketpair-like pipe is covered in the socket tests;
    // here assert the parser-level cap on a hostile huge line.
    InProcessClient client = ts.transport->connect();
    const std::string huge(2u << 20, 'x');
    client.send("{\"id\":\"big\",\"workload\":{\"name\":\"" + huge +
                "\"}}");
    const std::string reply = mustRecv(client);
    EXPECT_NE(reply.find("\"ok\":false"), std::string::npos) << reply;
    EXPECT_NE(reply.find("byte cap"), std::string::npos) << reply;
    ts.server->stop();
    EXPECT_TRUE(ts.server->stats().consistent());
}

TEST_F(ServeServerTest, InjectedParseFaultBecomesAPerLineError)
{
    TestServer ts(testOptions());
    fault::configure("server.parse:throw:nth=1");
    InProcessClient client = ts.transport->connect();
    client.send(coldRequest("pf", 60.0));
    const std::string reply = mustRecv(client);
    EXPECT_NE(reply.find("\"ok\":false"), std::string::npos) << reply;
    EXPECT_NE(reply.find("injected fault"), std::string::npos) << reply;
    EXPECT_NE(reply.find("\"fatal\":false"), std::string::npos)
        << reply;
    ts.server->stop();
    const ServerStats stats = ts.server->stats();
    EXPECT_EQ(stats.parseErrors, 1u);
    EXPECT_TRUE(stats.consistent());
}

TEST_F(ServeServerTest, InjectedProbeFaultBecomesAnInternalError)
{
    TestServer ts(testOptions());
    fault::configure("evaluator.probe:throw:nth=1");
    InProcessClient client = ts.transport->connect();
    client.send(coldRequest("probe", 61.0));
    const std::string reply = mustRecv(client);
    EXPECT_NE(reply.find("\"type\":\"internal\""), std::string::npos)
        << reply;
    ts.server->stop();
    EXPECT_TRUE(ts.server->stats().consistent());
}

TEST_F(ServeServerTest, InjectedEnqueueFaultFallsBackToShedding)
{
    TestServer ts(testOptions());
    fault::configure("server.enqueue:throw:nth=1");
    InProcessClient client = ts.transport->connect();
    client.send(coldRequest("eq", 62.0));
    const std::string reply = mustRecv(client);
    EXPECT_NE(reply.find("\"type\":\"overloaded\""), std::string::npos)
        << reply;
    ts.server->stop();
    const ServerStats stats = ts.server->stats();
    EXPECT_EQ(stats.shed, 1u);
    EXPECT_TRUE(stats.consistent());
}

TEST_F(ServeServerTest, InjectedSolveFaultBecomesATypedErrorReply)
{
    TestServer ts(testOptions());
    fault::configure("evaluator.solve:throw:count=1");
    InProcessClient client = ts.transport->connect();
    client.send(coldRequest("sf", 63.0));
    const std::string reply = mustRecv(client);
    EXPECT_NE(reply.find("\"ok\":false"), std::string::npos) << reply;
    EXPECT_NE(reply.find("FaultInjected"), std::string::npos) << reply;
    // Retryable failure: the same request succeeds afterwards.
    client.send(coldRequest("sf2", 63.0));
    EXPECT_NE(mustRecv(client).find("\"ok\":true"), std::string::npos);
    ts.server->stop();
    EXPECT_TRUE(ts.server->stats().consistent());
}

TEST_F(ServeServerTest, InjectedWriteFaultIsCountedNotThrown)
{
    TestServer ts(testOptions());
    fault::configure("server.write:throw:nth=1");
    InProcessClient client = ts.transport->connect();
    client.send(coldRequest("wf", 64.0));
    ASSERT_TRUE(spinUntil([&ts] {
        return ts.server->stats().writeErrors >= 1;
    })) << ts.server->stats().describe();
    ts.server->stop();
    const ServerStats stats = ts.server->stats();
    EXPECT_EQ(stats.writeErrors, 1u);
    EXPECT_TRUE(stats.consistent());
}

TEST_F(ServeServerTest, StatsJsonCarriesTheLedger)
{
    TestServer ts(testOptions());
    InProcessClient client = ts.transport->connect();
    client.send(coldRequest("j", 70.0));
    mustRecv(client);
    ts.server->stop();
    const std::string json = ts.server->stats().toJson();
    EXPECT_NE(json.find("\"accepted\":1"), std::string::npos) << json;
    EXPECT_NE(json.find("\"consistent\":true"), std::string::npos)
        << json;
}

// ---------------------------------------------------------------------
// Socket transports. These bind real sockets, so they skip (rather
// than fail) when the sandbox forbids it.

std::string
socketRoundTrip(Server &server, std::unique_ptr<LineStream> stream,
                const std::string &request)
{
    EXPECT_TRUE(stream->writeLine(request));
    std::string reply;
    EXPECT_EQ(stream->readLine(reply, 5000), LineStream::Read::Line);
    stream->shutdownStream();
    server.stop();
    return reply;
}

TEST_F(ServeServerTest, TcpRoundTrip)
{
    net::Listener listener;
    try {
        listener = net::listenTcp("127.0.0.1", 0);
    } catch (const ConfigError &e) {
        GTEST_SKIP() << "cannot bind TCP in this environment: "
                     << e.what();
    }
    const int port = listener.port;
    ASSERT_GT(port, 0);
    StreamLimits limits;
    ServerOptions opts = testOptions();
    Server server(opts);
    server.addTransport(
        makeSocketTransport(std::move(listener), limits));
    server.start();
    auto stream = makeSocketStream(net::connectTcp("127.0.0.1", port),
                                   limits, "test-client");
    const std::string reply = socketRoundTrip(
        server, std::move(stream), coldRequest("tcp", 80.0));
    EXPECT_NE(reply.find("\"ok\":true"), std::string::npos) << reply;
    EXPECT_TRUE(server.stats().consistent());
}

TEST_F(ServeServerTest, UnixSocketRoundTripAndLineCap)
{
    const std::string path =
        ::testing::TempDir() + "memsense_server_test.sock";
    net::Listener listener;
    try {
        listener = net::listenUnix(path);
    } catch (const ConfigError &e) {
        GTEST_SKIP() << "cannot bind a Unix socket here: " << e.what();
    }
    StreamLimits limits;
    limits.maxLineBytes = 256; // exercise the fd-stream line cap too
    ServerOptions opts = testOptions();
    opts.maxLineBytes = 256;
    Server server(opts);
    server.addTransport(
        makeSocketTransport(std::move(listener), limits));
    server.start();
    // The client keeps the default cap: ok-replies are longer than the
    // 256-byte cap under test on the server side.
    StreamLimits client_limits;
    auto stream = makeSocketStream(net::connectUnix(path),
                                   client_limits, "test-client");
    ASSERT_TRUE(stream->writeLine(coldRequest("ux", 81.0)));
    std::string reply;
    ASSERT_EQ(stream->readLine(reply, 5000), LineStream::Read::Line);
    EXPECT_NE(reply.find("\"ok\":true"), std::string::npos) << reply;
    // A line past the cap draws a ConfigError reply, then EOF.
    ASSERT_TRUE(stream->writeLine(
        "{\"id\":\"big\",\"workload\":{\"name\":\"" +
        std::string(600, 'x') + "\"}}"));
    ASSERT_EQ(stream->readLine(reply, 5000), LineStream::Read::Line);
    EXPECT_NE(reply.find("exceeds"), std::string::npos) << reply;
    EXPECT_EQ(stream->readLine(reply, 5000), LineStream::Read::Eof);
    stream->shutdownStream();
    server.stop();
    EXPECT_TRUE(server.stats().consistent());
}

} // anonymous namespace
} // namespace memsense::serve
