/**
 * @file
 * Tests for the fault-tolerant evaluation server.
 *
 * Driven almost entirely over the in-process transport so the full
 * accept/read/admit/solve/reply/drain machinery runs with zero kernel
 * dependencies, plus socket round-trips that skip cleanly when the
 * sandbox forbids binding. Deadline behaviour is tested with an
 * auto-advancing injected clock (every observation moves time forward
 * by a fixed step), so deadline-in-queue and deadline-mid-solve are
 * deterministic rather than sleep-raced; queue-pressure behaviour is
 * forced with `delay`-kind injected faults that hold the single worker
 * busy while requests pile up behind it.
 *
 * The invariant asserted everywhere: every accepted request gets
 * exactly one reply — ServerStats::consistent() — no matter which
 * fault, shed, deadline, or drain path it took.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.hh"
#include "serve/transport.hh"
#include "util/fault_injection.hh"
#include "util/socket.hh"

namespace memsense::serve
{
namespace
{

/** Server + its in-process transport, wired for one test. */
struct TestServer
{
    InProcessTransport *transport = nullptr;
    std::unique_ptr<Server> server;

    explicit TestServer(ServerOptions opts = {})
    {
        server = std::make_unique<Server>(std::move(opts));
        auto t = std::make_unique<InProcessTransport>();
        transport = t.get();
        server->addTransport(std::move(t));
        server->start();
    }
};

/** Fast server options for tests (tight poll, quick drain). */
ServerOptions
testOptions()
{
    ServerOptions opts;
    opts.pollMs = 5;
    opts.drainDeadlineMs = 200.0;
    return opts;
}

/** A clock that advances stepMs on every observation. */
std::function<double()>
autoAdvancingClock(double step_ms)
{
    auto t = std::make_shared<double>(0.0);
    return [t, step_ms] {
        *t += step_ms;
        return *t;
    };
}

std::string
coldRequest(const char *id, double mpki)
{
    return std::string("{\"id\":\"") + id +
           "\",\"workload\":{\"mpki\":" + std::to_string(mpki) + "}}";
}

/** Receive one line or fail the test. */
std::string
mustRecv(InProcessClient &client, int timeout_ms = 5000)
{
    std::string line;
    const LineStream::Read r = client.recv(line, timeout_ms);
    EXPECT_EQ(r, LineStream::Read::Line) << "no reply within budget";
    return line;
}

/** Spin until @p pred holds or ~2s of real time passes. */
template <typename Pred>
bool
spinUntil(Pred pred)
{
    for (int i = 0; i < 400; ++i) {
        if (pred())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return pred();
}

class ServeServerTest : public ::testing::Test
{
  protected:
    void TearDown() override { fault::reset(); }
};

TEST_F(ServeServerTest, StartStopWithoutTrafficIsClean)
{
    TestServer ts(testOptions());
    ts.server->stop();
    ts.server->stop(); // idempotent
    const ServerStats stats = ts.server->stats();
    EXPECT_EQ(stats.accepted, 0u);
    EXPECT_TRUE(stats.consistent());
}

TEST_F(ServeServerTest, EveryRequestGetsExactlyOneReply)
{
    TestServer ts(testOptions());
    InProcessClient client = ts.transport->connect();
    client.send(coldRequest("r1", 10.0));
    client.send(coldRequest("r2", 11.0));
    client.send(coldRequest("r3", 10.0)); // dup of r1's params
    std::vector<std::string> replies;
    for (int i = 0; i < 3; ++i)
        replies.push_back(mustRecv(client));
    for (const std::string &r : replies)
        EXPECT_NE(r.find("\"ok\":true"), std::string::npos) << r;
    ts.server->stop();
    const ServerStats stats = ts.server->stats();
    EXPECT_EQ(stats.accepted, 3u);
    EXPECT_EQ(stats.repliesOk, 3u);
    EXPECT_TRUE(stats.consistent());
}

TEST_F(ServeServerTest, CacheHitsAreServedInlineOnTheReaderThread)
{
    TestServer ts(testOptions());
    InProcessClient client = ts.transport->connect();
    client.send(coldRequest("cold", 12.0));
    const std::string first = mustRecv(client);
    client.send(coldRequest("warm", 12.0));
    const std::string second = mustRecv(client);
    EXPECT_NE(second.find("\"ok\":true"), std::string::npos);
    ts.server->stop();
    const ServerStats stats = ts.server->stats();
    EXPECT_EQ(stats.cacheHits, 1u);
    EXPECT_EQ(stats.solved, 1u);
    // The hit and the solve must agree byte-for-byte past the id.
    EXPECT_EQ(first.substr(first.find("\"op\"")),
              second.substr(second.find("\"op\"")));
}

TEST_F(ServeServerTest, MalformedLineGetsATypedErrorReply)
{
    TestServer ts(testOptions());
    InProcessClient client = ts.transport->connect();
    client.send("this is not json");
    const std::string reply = mustRecv(client);
    EXPECT_NE(reply.find("\"ok\":false"), std::string::npos) << reply;
    EXPECT_NE(reply.find("\"id\":\"line-1\""), std::string::npos)
        << reply;
    EXPECT_NE(reply.find("\"fatal\":true"), std::string::npos) << reply;
    // The connection survives a bad line; the next request works.
    client.send(coldRequest("after", 13.0));
    EXPECT_NE(mustRecv(client).find("\"ok\":true"), std::string::npos);
    ts.server->stop();
    EXPECT_TRUE(ts.server->stats().consistent());
}

TEST_F(ServeServerTest, DeadlineExpiredWhileQueuedIsRefusedCheaply)
{
    ServerOptions opts = testOptions();
    // Every clock observation advances 1s, so a 10ms budget taken at
    // enqueue has always expired by the worker's dequeue check.
    opts.nowMs = autoAdvancingClock(1000.0);
    TestServer ts(opts);
    InProcessClient client = ts.transport->connect();
    client.send("{\"id\":\"dl\",\"deadline_ms\":10,"
                "\"workload\":{\"mpki\":14}}");
    const std::string reply = mustRecv(client);
    EXPECT_NE(reply.find("\"type\":\"deadline_exceeded\""),
              std::string::npos)
        << reply;
    EXPECT_NE(reply.find("while queued"), std::string::npos) << reply;
    EXPECT_NE(reply.find("\"fatal\":false"), std::string::npos) << reply;
    ts.server->stop();
    const ServerStats stats = ts.server->stats();
    EXPECT_EQ(stats.deadlineExceeded, 1u);
    EXPECT_EQ(stats.solved, 0u);
    EXPECT_TRUE(stats.consistent());
}

TEST_F(ServeServerTest, DeadlineCutsASolveMidFlightCooperatively)
{
    ServerOptions opts = testOptions();
    // Budget 1500ms, step 1000ms: the dequeue check survives (enqueue
    // t=1000 -> deadline 2500, dequeue t=2000) and the first solver
    // cancel poll (t=3000) fires — the cooperative mid-solve path.
    opts.nowMs = autoAdvancingClock(1000.0);
    TestServer ts(opts);
    InProcessClient client = ts.transport->connect();
    client.send("{\"id\":\"mid\",\"deadline_ms\":1500,"
                "\"workload\":{\"mpki\":15}}");
    const std::string reply = mustRecv(client);
    EXPECT_NE(reply.find("\"type\":\"deadline_exceeded\""),
              std::string::npos)
        << reply;
    EXPECT_NE(reply.find("mid-solve"), std::string::npos) << reply;
    ts.server->stop();
    const ServerStats stats = ts.server->stats();
    EXPECT_EQ(stats.deadlineExceeded, 1u);
    EXPECT_TRUE(stats.consistent());
}

TEST_F(ServeServerTest, QueueOverflowShedsWithOverloadedError)
{
    ServerOptions opts = testOptions();
    opts.workers = 1;
    opts.maxQueueDepth = 1;
    TestServer ts(opts);
    // Hold the single worker inside its first solve for 400ms.
    fault::configure("server.solve:delay=400:count=1");
    InProcessClient client = ts.transport->connect();
    client.send(coldRequest("busy", 20.0));
    ASSERT_TRUE(spinUntil([] {
        return fault::fireCount("server.solve") >= 1;
    })) << "worker never picked up the blocking request";
    client.send(coldRequest("queued", 21.0));
    // Give the reader a beat to enqueue "queued" before overflowing.
    ASSERT_TRUE(spinUntil([&ts] {
        return ts.server->stats().accepted >= 2;
    }));
    client.send(coldRequest("shed", 22.0));
    // The shed reply arrives first (reader thread, no queue wait).
    const std::string shed_reply = mustRecv(client);
    EXPECT_NE(shed_reply.find("\"type\":\"overloaded\""),
              std::string::npos)
        << shed_reply;
    EXPECT_NE(shed_reply.find("queue full"), std::string::npos)
        << shed_reply;
    // The blocked and queued solves still complete.
    EXPECT_NE(mustRecv(client).find("\"ok\":true"), std::string::npos);
    EXPECT_NE(mustRecv(client).find("\"ok\":true"), std::string::npos);
    ts.server->stop();
    const ServerStats stats = ts.server->stats();
    EXPECT_EQ(stats.shed, 1u);
    EXPECT_EQ(stats.solved, 2u);
    EXPECT_TRUE(stats.consistent());
}

TEST_F(ServeServerTest, ShedRequestsCanBeServedStaleAndDegraded)
{
    ServerOptions opts = testOptions();
    opts.workers = 1;
    opts.maxQueueDepth = 1;
    opts.allowStale = true;
    TestServer ts(opts);
    InProcessClient client = ts.transport->connect();
    // Warm the coarse stale cache with a full solve near mpki=10.
    client.send("{\"id\":\"warm\",\"workload\":{\"mpki\":10.0001}}");
    EXPECT_NE(mustRecv(client).find("\"ok\":true"), std::string::npos);
    // Now jam the worker and fill the queue.
    fault::configure("server.solve:delay=400:count=1");
    client.send(coldRequest("busy", 30.0));
    ASSERT_TRUE(spinUntil([] {
        return fault::fireCount("server.solve") >= 1;
    }));
    client.send(coldRequest("queued", 31.0));
    ASSERT_TRUE(spinUntil([&ts] {
        return ts.server->stats().accepted >= 3;
    }));
    // Same coarse key as the warm solve, different exact fingerprint:
    // shed, but answerable stale.
    client.send("{\"id\":\"stale-ok\",\"workload\":{\"mpki\":10.0002}}");
    const std::string degraded = mustRecv(client);
    EXPECT_NE(degraded.find("\"degraded\":true"), std::string::npos)
        << degraded;
    EXPECT_NE(degraded.find("\"ok\":true"), std::string::npos)
        << degraded;
    // The same shape opting out of staleness gets the overload error.
    client.send("{\"id\":\"no-stale\",\"allow_stale\":false,"
                "\"workload\":{\"mpki\":10.0003}}");
    const std::string refused = mustRecv(client);
    EXPECT_NE(refused.find("\"type\":\"overloaded\""), std::string::npos)
        << refused;
    // Drain the two slow solves.
    EXPECT_NE(mustRecv(client).find("\"ok\":true"), std::string::npos);
    EXPECT_NE(mustRecv(client).find("\"ok\":true"), std::string::npos);
    ts.server->stop();
    const ServerStats stats = ts.server->stats();
    EXPECT_EQ(stats.staleServed, 1u);
    EXPECT_EQ(stats.shed, 2u);
    EXPECT_TRUE(stats.consistent());
}

TEST_F(ServeServerTest, DrainDeadlineFlushesQueuedWorkAsOverloaded)
{
    ServerOptions opts = testOptions();
    opts.workers = 1;
    opts.drainDeadlineMs = 50.0;
    TestServer ts(opts);
    fault::configure("server.solve:delay=400:count=1");
    InProcessClient client = ts.transport->connect();
    client.send(coldRequest("busy", 40.0));
    ASSERT_TRUE(spinUntil([] {
        return fault::fireCount("server.solve") >= 1;
    }));
    client.send(coldRequest("q1", 41.0));
    client.send(coldRequest("q2", 42.0));
    ASSERT_TRUE(spinUntil([&ts] {
        return ts.server->stats().accepted >= 3;
    }));
    // Stop: the 50ms drain budget expires inside the worker's 400ms
    // stall, so q1/q2 are flushed as "server draining".
    ts.server->stop();
    const ServerStats stats = ts.server->stats();
    EXPECT_EQ(stats.drained, 2u);
    EXPECT_EQ(stats.solved, 1u);
    EXPECT_TRUE(stats.consistent());
    int ok = 0;
    int draining = 0;
    for (int i = 0; i < 3; ++i) {
        const std::string reply = mustRecv(client);
        if (reply.find("\"ok\":true") != std::string::npos)
            ++ok;
        if (reply.find("server draining") != std::string::npos)
            ++draining;
    }
    EXPECT_EQ(ok, 1);
    EXPECT_EQ(draining, 2);
}

TEST_F(ServeServerTest, ConnectionLimitShedsTheExcessConnection)
{
    ServerOptions opts = testOptions();
    opts.maxConnections = 1;
    TestServer ts(opts);
    InProcessClient first = ts.transport->connect();
    first.send(coldRequest("keep", 50.0));
    EXPECT_NE(mustRecv(first).find("\"ok\":true"), std::string::npos);
    InProcessClient second = ts.transport->connect();
    const std::string refused = mustRecv(second);
    EXPECT_NE(refused.find("connection limit"), std::string::npos)
        << refused;
    // The first connection keeps working.
    first.send(coldRequest("still", 51.0));
    EXPECT_NE(mustRecv(first).find("\"ok\":true"), std::string::npos);
    ts.server->stop();
    const ServerStats stats = ts.server->stats();
    EXPECT_EQ(stats.connectionsShed, 1u);
    EXPECT_EQ(stats.connections, 1u);
    EXPECT_TRUE(stats.consistent());
}

TEST_F(ServeServerTest, OversizedLineIsRefusedAndConnectionDropped)
{
    ServerOptions opts = testOptions();
    TestServer ts(opts);
    // The in-process transport has no byte cap (its lines arrive
    // pre-framed), so exercise the fd-backed stream's cap directly
    // through a socketpair-like pipe is covered in the socket tests;
    // here assert the parser-level cap on a hostile huge line.
    InProcessClient client = ts.transport->connect();
    const std::string huge(2u << 20, 'x');
    client.send("{\"id\":\"big\",\"workload\":{\"name\":\"" + huge +
                "\"}}");
    const std::string reply = mustRecv(client);
    EXPECT_NE(reply.find("\"ok\":false"), std::string::npos) << reply;
    EXPECT_NE(reply.find("byte cap"), std::string::npos) << reply;
    ts.server->stop();
    EXPECT_TRUE(ts.server->stats().consistent());
}

TEST_F(ServeServerTest, InjectedParseFaultBecomesAPerLineError)
{
    TestServer ts(testOptions());
    fault::configure("server.parse:throw:nth=1");
    InProcessClient client = ts.transport->connect();
    client.send(coldRequest("pf", 60.0));
    const std::string reply = mustRecv(client);
    EXPECT_NE(reply.find("\"ok\":false"), std::string::npos) << reply;
    EXPECT_NE(reply.find("injected fault"), std::string::npos) << reply;
    EXPECT_NE(reply.find("\"fatal\":false"), std::string::npos)
        << reply;
    ts.server->stop();
    const ServerStats stats = ts.server->stats();
    EXPECT_EQ(stats.parseErrors, 1u);
    EXPECT_TRUE(stats.consistent());
}

TEST_F(ServeServerTest, InjectedProbeFaultBecomesAnInternalError)
{
    TestServer ts(testOptions());
    fault::configure("evaluator.probe:throw:nth=1");
    InProcessClient client = ts.transport->connect();
    client.send(coldRequest("probe", 61.0));
    const std::string reply = mustRecv(client);
    EXPECT_NE(reply.find("\"type\":\"internal\""), std::string::npos)
        << reply;
    ts.server->stop();
    EXPECT_TRUE(ts.server->stats().consistent());
}

TEST_F(ServeServerTest, InjectedEnqueueFaultFallsBackToShedding)
{
    TestServer ts(testOptions());
    fault::configure("server.enqueue:throw:nth=1");
    InProcessClient client = ts.transport->connect();
    client.send(coldRequest("eq", 62.0));
    const std::string reply = mustRecv(client);
    EXPECT_NE(reply.find("\"type\":\"overloaded\""), std::string::npos)
        << reply;
    ts.server->stop();
    const ServerStats stats = ts.server->stats();
    EXPECT_EQ(stats.shed, 1u);
    EXPECT_TRUE(stats.consistent());
}

TEST_F(ServeServerTest, InjectedSolveFaultBecomesATypedErrorReply)
{
    TestServer ts(testOptions());
    fault::configure("evaluator.solve:throw:count=1");
    InProcessClient client = ts.transport->connect();
    client.send(coldRequest("sf", 63.0));
    const std::string reply = mustRecv(client);
    EXPECT_NE(reply.find("\"ok\":false"), std::string::npos) << reply;
    EXPECT_NE(reply.find("FaultInjected"), std::string::npos) << reply;
    // Retryable failure: the same request succeeds afterwards.
    client.send(coldRequest("sf2", 63.0));
    EXPECT_NE(mustRecv(client).find("\"ok\":true"), std::string::npos);
    ts.server->stop();
    EXPECT_TRUE(ts.server->stats().consistent());
}

TEST_F(ServeServerTest, InjectedWriteFaultIsCountedNotThrown)
{
    TestServer ts(testOptions());
    fault::configure("server.write:throw:nth=1");
    InProcessClient client = ts.transport->connect();
    client.send(coldRequest("wf", 64.0));
    ASSERT_TRUE(spinUntil([&ts] {
        return ts.server->stats().writeErrors >= 1;
    })) << ts.server->stats().describe();
    ts.server->stop();
    const ServerStats stats = ts.server->stats();
    EXPECT_EQ(stats.writeErrors, 1u);
    EXPECT_TRUE(stats.consistent());
}

TEST_F(ServeServerTest, StatsJsonCarriesTheLedger)
{
    TestServer ts(testOptions());
    InProcessClient client = ts.transport->connect();
    client.send(coldRequest("j", 70.0));
    mustRecv(client);
    ts.server->stop();
    const std::string json = ts.server->stats().toJson();
    EXPECT_NE(json.find("\"accepted\":1"), std::string::npos) << json;
    EXPECT_NE(json.find("\"consistent\":true"), std::string::npos)
        << json;
}

// ---------------------------------------------------------------------
// Batching, dedup, and per-client quotas.

TEST_F(ServeServerTest, BatchCoalescesAndDedupsQueuedDuplicates)
{
    ServerOptions opts = testOptions();
    opts.workers = 1;
    opts.maxBatch = 16;
    opts.maxQueueDepth = 16;
    TestServer ts(opts);
    // Hold the single worker inside its first solve while duplicates
    // pile up behind it, then let one drain pass coalesce them.
    fault::configure("server.solve:delay=600:count=1");
    InProcessClient client = ts.transport->connect();
    client.send(coldRequest("busy", 20.0));
    ASSERT_TRUE(spinUntil([] {
        return fault::fireCount("server.solve") >= 1;
    })) << "worker never picked up the blocking request";
    // Six queued requests, three distinct shapes: the batch must cost
    // exactly three cold solves.
    const std::string lines[] = {
        coldRequest("a1", 91.0), coldRequest("a2", 91.0),
        coldRequest("a3", 91.0), coldRequest("b1", 92.0),
        coldRequest("b2", 92.0), coldRequest("c1", 93.0),
    };
    std::size_t queued_bytes = 0;
    for (const std::string &line : lines) {
        client.send(line);
        queued_bytes += line.size();
    }
    ASSERT_TRUE(spinUntil([&ts, queued_bytes] {
        return ts.server->inflightBytesNow() == queued_bytes;
    })) << "queued requests never all landed in the admission queue";
    for (int i = 0; i < 7; ++i)
        EXPECT_NE(mustRecv(client).find("\"ok\":true"),
                  std::string::npos);
    ts.server->stop();
    const ServerStats stats = ts.server->stats();
    // The acceptance invariant: cold-solve count == unique shapes.
    // busy + three unique batch members insert; the duplicates do not.
    EXPECT_EQ(ts.server->evaluator().cacheStats().inserts, 4u);
    EXPECT_EQ(stats.solved, 7u);
    EXPECT_EQ(stats.batches, 1u);
    EXPECT_EQ(stats.batchedRequests, 6u);
    EXPECT_EQ(stats.batchDeduped, 3u);
    EXPECT_TRUE(stats.consistent()) << stats.describe();
}

TEST_F(ServeServerTest, DeadlineCanExpireMidBatchAfterASharedSolve)
{
    ServerOptions opts = testOptions();
    opts.workers = 1;
    // Step 1000ms per observation. The deadline-carrying duplicate
    // observes the clock at enqueue (t=1000, deadline 2500), at batch
    // triage (t=2000, still live), and at the post-solve recheck
    // (t=3000, expired): its patient twin pins the dedup group at
    // "never cancel", so the shared solve completes and the expiry is
    // caught by the mid-batch recheck, not by cancellation.
    opts.nowMs = autoAdvancingClock(1000.0);
    TestServer ts(opts);
    fault::configure("server.solve:delay=400:count=1");
    InProcessClient client = ts.transport->connect();
    client.send(coldRequest("busy", 40.0));
    ASSERT_TRUE(spinUntil([] {
        return fault::fireCount("server.solve") >= 1;
    }));
    const std::string patient = coldRequest("dup-patient", 95.0);
    const std::string hurried =
        "{\"id\":\"dup-hurried\",\"deadline_ms\":1500,"
        "\"workload\":{\"mpki\":95}}";
    client.send(patient);
    client.send(hurried);
    const std::size_t queued_bytes = patient.size() + hurried.size();
    ASSERT_TRUE(spinUntil([&ts, queued_bytes] {
        return ts.server->inflightBytesNow() == queued_bytes;
    }));
    int ok = 0;
    std::string hurried_reply;
    for (int i = 0; i < 3; ++i) {
        const std::string reply = mustRecv(client);
        if (reply.find("\"id\":\"dup-hurried\"") != std::string::npos)
            hurried_reply = reply;
        else if (reply.find("\"ok\":true") != std::string::npos)
            ++ok;
    }
    EXPECT_EQ(ok, 2); // busy + the patient duplicate
    EXPECT_NE(hurried_reply.find("\"type\":\"deadline_exceeded\""),
              std::string::npos)
        << hurried_reply;
    EXPECT_NE(hurried_reply.find("deadline expired mid-batch"),
              std::string::npos)
        << hurried_reply;
    ts.server->stop();
    const ServerStats stats = ts.server->stats();
    EXPECT_EQ(stats.deadlineExceeded, 1u);
    EXPECT_EQ(stats.solved, 2u);
    EXPECT_EQ(stats.batchDeduped, 1u);
    EXPECT_TRUE(stats.consistent()) << stats.describe();
}

TEST_F(ServeServerTest, PerClientQuotaShedsBeforeGlobalAdmission)
{
    ServerOptions opts = testOptions();
    opts.workers = 1;
    opts.maxQueueDepth = 1;
    opts.maxQueuePerClient = 1;
    TestServer ts(opts);
    fault::configure("server.solve:delay=600:count=1");
    InProcessClient noisy = ts.transport->connect();
    InProcessClient good = ts.transport->connect();
    noisy.send(coldRequest("busy", 20.0));
    ASSERT_TRUE(spinUntil([] {
        return fault::fireCount("server.solve") >= 1;
    }));
    // The noisy client's one queued job is both its whole quota and the
    // whole global queue.
    const std::string n1 = coldRequest("n1", 21.0);
    noisy.send(n1);
    ASSERT_TRUE(spinUntil([&ts, &n1] {
        return ts.server->inflightBytesNow() == n1.size();
    }));
    // Both the noisy client's quota AND the global queue bound would
    // now refuse its next request; the quota tier must win, so the
    // noisy neighbor hears "slow down", not "server full".
    noisy.send(coldRequest("n2", 22.0));
    const std::string quota_reply = mustRecv(noisy);
    EXPECT_NE(quota_reply.find("\"type\":\"quota_exceeded\""),
              std::string::npos)
        << quota_reply;
    EXPECT_NE(quota_reply.find("over quota"), std::string::npos)
        << quota_reply;
    // The well-behaved client has nothing queued, so its quota is
    // clean; hitting the full global queue draws the capacity error,
    // not the quota error.
    good.send(coldRequest("g1", 23.0));
    const std::string shed_reply = mustRecv(good);
    EXPECT_NE(shed_reply.find("\"type\":\"overloaded\""),
              std::string::npos)
        << shed_reply;
    // The jammed and queued solves drain normally.
    EXPECT_NE(mustRecv(noisy).find("\"ok\":true"), std::string::npos);
    EXPECT_NE(mustRecv(noisy).find("\"ok\":true"), std::string::npos);
    ts.server->stop();
    const ServerStats stats = ts.server->stats();
    EXPECT_EQ(stats.quotaShed, 1u);
    EXPECT_EQ(stats.shed, 1u);
    EXPECT_EQ(stats.solved, 2u);
    EXPECT_TRUE(stats.consistent()) << stats.describe();
    // Per-client ledgers: the quota shed landed on the noisy client,
    // the capacity shed on the other, and both survive into the JSON.
    ASSERT_EQ(stats.clients.size(), 2u);
    std::uint64_t quota_sheds = 0;
    std::uint64_t capacity_sheds = 0;
    for (const ClientStats &c : stats.clients) {
        quota_sheds += c.quotaShed;
        capacity_sheds += c.shed;
        if (c.quotaShed > 0) {
            EXPECT_EQ(c.shed, 0u) << c.id;
        }
    }
    EXPECT_EQ(quota_sheds, 1u);
    EXPECT_EQ(capacity_sheds, 1u);
    const std::string json = stats.toJson();
    EXPECT_NE(json.find("\"clients\":{"), std::string::npos) << json;
    EXPECT_NE(json.find("\"quota_shed\":1"), std::string::npos) << json;
}

TEST_F(ServeServerTest, DrainReleasesInflightBytesPerJobExactly)
{
    ServerOptions opts = testOptions();
    opts.workers = 1;
    opts.drainDeadlineMs = 50.0;
    TestServer ts(opts);
    fault::configure("server.solve:delay=400:count=1");
    InProcessClient client = ts.transport->connect();
    client.send(coldRequest("busy", 40.0));
    ASSERT_TRUE(spinUntil([] {
        return fault::fireCount("server.solve") >= 1;
    }));
    const std::string q1 = coldRequest("q1", 41.0);
    const std::string q2 = coldRequest("q2", 42.0);
    client.send(q1);
    client.send(q2);
    // The queue's byte ledger must hold exactly the two queued lines
    // (the jammed request's bytes were released at dequeue) ...
    const std::size_t queued_bytes = q1.size() + q2.size();
    ASSERT_TRUE(spinUntil([&ts, queued_bytes] {
        return ts.server->inflightBytesNow() == queued_bytes;
    })) << ts.server->inflightBytesNow();
    // ... and the drain flush must release it per job, landing on
    // exactly zero — the regression guard for the drain path once
    // zeroing the counter wholesale instead of per flushed job.
    ts.server->stop();
    EXPECT_EQ(ts.server->inflightBytesNow(), 0u);
    const ServerStats stats = ts.server->stats();
    EXPECT_EQ(stats.drained, 2u);
    EXPECT_EQ(stats.solved, 1u);
    EXPECT_TRUE(stats.consistent()) << stats.describe();
}

TEST_F(ServeServerTest, CoarseStaleKeyCanonicalizesFloatEdgeCases)
{
    // The coarse stale-cache key must not let bitwise float oddities
    // split one coarse slot into several: -0.0 vs +0.0, denormals vs
    // zero, and every NaN payload all render one canonical token.
    EvalRequest base;
    EvalRequest probe;
    base.workload.wbr = 0.0;
    probe.workload.wbr = -0.0;
    EXPECT_EQ(coarseRequestKey(base), coarseRequestKey(probe));
    probe.workload.wbr = std::numeric_limits<double>::denorm_min();
    EXPECT_EQ(coarseRequestKey(base), coarseRequestKey(probe));
    probe.workload.wbr = -std::numeric_limits<double>::denorm_min();
    EXPECT_EQ(coarseRequestKey(base), coarseRequestKey(probe));
    base.workload.iopi = std::numeric_limits<double>::quiet_NaN();
    probe.workload.wbr = base.workload.wbr;
    probe.workload.iopi = -std::numeric_limits<double>::quiet_NaN();
    EXPECT_EQ(coarseRequestKey(base), coarseRequestKey(probe));

    // Deterministic bit-pattern fuzz: for any double, the key must be
    // class-canonical — NaNs key like the canonical NaN, zeros and
    // denormals like 0.0 — and negating a zero/denormal never changes
    // the key.
    const std::string zero_key = [] {
        EvalRequest r;
        r.workload.wbr = 0.0;
        return coarseRequestKey(r);
    }();
    const std::string nan_key = [] {
        EvalRequest r;
        r.workload.wbr = std::numeric_limits<double>::quiet_NaN();
        return coarseRequestKey(r);
    }();
    std::uint64_t lcg = 0x9e3779b97f4a7c15ull;
    for (int i = 0; i < 256; ++i) {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        double v;
        static_assert(sizeof(v) == sizeof(lcg), "double is 64-bit");
        std::memcpy(&v, &lcg, sizeof(v));
        EvalRequest r;
        r.workload.wbr = v;
        const std::string key = coarseRequestKey(r);
        const bool zeroClass =
            // memsense-lint: allow(float-equal): exact-zero sentinel
            v == 0.0 || std::fpclassify(v) == FP_SUBNORMAL;
        if (std::isnan(v)) {
            EXPECT_EQ(key, nan_key) << "bits " << lcg;
        } else if (zeroClass) {
            EXPECT_EQ(key, zero_key) << "bits " << lcg;
        }
        EvalRequest neg;
        neg.workload.wbr = -v;
        if (zeroClass) {
            EXPECT_EQ(coarseRequestKey(neg), key) << "bits " << lcg;
        }
    }
}

// ---------------------------------------------------------------------
// Socket transports. These bind real sockets, so they skip (rather
// than fail) when the sandbox forbids it.

std::string
socketRoundTrip(Server &server, std::unique_ptr<LineStream> stream,
                const std::string &request)
{
    EXPECT_TRUE(stream->writeLine(request));
    std::string reply;
    EXPECT_EQ(stream->readLine(reply, 5000), LineStream::Read::Line);
    stream->shutdownStream();
    server.stop();
    return reply;
}

TEST_F(ServeServerTest, TcpRoundTrip)
{
    net::Listener listener;
    try {
        listener = net::listenTcp("127.0.0.1", 0);
    } catch (const ConfigError &e) {
        GTEST_SKIP() << "cannot bind TCP in this environment: "
                     << e.what();
    }
    const int port = listener.port;
    ASSERT_GT(port, 0);
    StreamLimits limits;
    ServerOptions opts = testOptions();
    Server server(opts);
    server.addTransport(
        makeSocketTransport(std::move(listener), limits));
    server.start();
    auto stream = makeSocketStream(net::connectTcp("127.0.0.1", port),
                                   limits, "test-client");
    const std::string reply = socketRoundTrip(
        server, std::move(stream), coldRequest("tcp", 80.0));
    EXPECT_NE(reply.find("\"ok\":true"), std::string::npos) << reply;
    EXPECT_TRUE(server.stats().consistent());
}

TEST_F(ServeServerTest, UnixSocketRoundTripAndLineCap)
{
    const std::string path =
        ::testing::TempDir() + "memsense_server_test.sock";
    net::Listener listener;
    try {
        listener = net::listenUnix(path);
    } catch (const ConfigError &e) {
        GTEST_SKIP() << "cannot bind a Unix socket here: " << e.what();
    }
    StreamLimits limits;
    limits.maxLineBytes = 256; // exercise the fd-stream line cap too
    ServerOptions opts = testOptions();
    opts.maxLineBytes = 256;
    Server server(opts);
    server.addTransport(
        makeSocketTransport(std::move(listener), limits));
    server.start();
    // The client keeps the default cap: ok-replies are longer than the
    // 256-byte cap under test on the server side.
    StreamLimits client_limits;
    auto stream = makeSocketStream(net::connectUnix(path),
                                   client_limits, "test-client");
    ASSERT_TRUE(stream->writeLine(coldRequest("ux", 81.0)));
    std::string reply;
    ASSERT_EQ(stream->readLine(reply, 5000), LineStream::Read::Line);
    EXPECT_NE(reply.find("\"ok\":true"), std::string::npos) << reply;
    // A line past the cap draws a ConfigError reply, then EOF.
    ASSERT_TRUE(stream->writeLine(
        "{\"id\":\"big\",\"workload\":{\"name\":\"" +
        std::string(600, 'x') + "\"}}"));
    ASSERT_EQ(stream->readLine(reply, 5000), LineStream::Read::Line);
    EXPECT_NE(reply.find("exceeds"), std::string::npos) << reply;
    EXPECT_EQ(stream->readLine(reply, 5000), LineStream::Read::Eof);
    stream->shutdownStream();
    server.stop();
    EXPECT_TRUE(server.stats().consistent());
}

} // anonymous namespace
} // namespace memsense::serve
