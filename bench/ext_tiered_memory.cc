/**
 * @file
 * Sec. VII extension: hierarchical (tiered) memory via Eq. 5.
 *
 * Models a fast DRAM tier fronting a slower, larger emerging-memory
 * tier (higher latency, lower bandwidth — the paper's description of
 * emerging technologies) and sweeps the DRAM-tier capacity, showing
 * how each workload class's CPI responds to the near-tier hit
 * fraction. The far tier can become the bandwidth bottleneck for the
 * HPC mix exactly as DRAM does in Fig. 8.
 */

#include "bench_common.hh"
#include "model/hierarchy.hh"
#include "model/paper_data.hh"

using namespace memsense;
using namespace memsense::bench;

int
main(int argc, char **argv)
{
    benchInit(argc, argv);
    header("Eq. 5 extension (Sec. VII)",
           "Two-tier memory: 75 ns / 40 GB/s DRAM cache in front of a "
           "300 ns / 12 GB/s capacity tier; 64 GB workload footprint");

    model::MemoryTier dram{"DRAM-cache", 75.0, 40.0, 0.0};
    model::MemoryTier nvm{"NVM", 300.0, 12.0, 512.0};
    const std::vector<double> capacities = {0.5, 1, 2, 4, 8, 16,
                                            32, 64};

    for (const auto &p : model::paper::classParams()) {
        model::TieredMemoryModel tiered(dram, nvm, 64.0, 0.5);
        auto sweep = tiered.capacitySweep(p, 2.7, 8, capacities);
        std::cout << "\n-- " << p.name << " --\n";
        Table t({"DRAM tier (GB)", "hit fraction", "CPI",
                 "near util", "far util", "far BW bound"});
        std::vector<std::vector<double>> csv;
        for (std::size_t i = 0; i < sweep.size(); ++i) {
            const auto &r = sweep[i];
            t.addRow({formatDouble(capacities[i], 1),
                      formatPercent(r.hitFraction, 1),
                      formatDouble(r.cpiEff, 3),
                      formatPercent(r.nearUtilization, 1),
                      formatPercent(r.farUtilization, 1),
                      r.farBandwidthBound ? "yes" : "no"});
            csv.push_back({capacities[i], r.hitFraction, r.cpiEff,
                           r.nearUtilization, r.farUtilization,
                           r.farBandwidthBound ? 1.0 : 0.0});
        }
        t.print(std::cout);
        csvBlock("ext_tiered_" + p.name,
                 {"near_gb", "hit", "cpi", "near_util", "far_util",
                  "far_bound"},
                 csv);
    }
    std::cout << "\nEq. 5: CPI_eff = CPI_cache + (MPI_i*MP_i + "
                 "MPI_ii*MP_ii) * BF — the paper's sketch for "
                 "emerging-memory hierarchies, with per-tier queuing "
                 "added.\n";
    return 0;
}
