/**
 * @file
 * Fig. 11 reproduction: CPI impact of each +10 ns compulsory-latency
 * step (the discrete derivative of Fig. 10).
 *
 * Paper claims reproduced: the per-step impact is nearly constant —
 * about 3.5% per 10 ns for the enterprise class and about 2.5% for
 * big data — and zero for the bandwidth-bound HPC class.
 */

#include "model_common.hh"
#include "model/sensitivity.hh"

using namespace memsense;
using namespace memsense::bench;

int
main(int argc, char **argv)
{
    benchInit(argc, argv);
    header("Figure 11",
           "CPI impact per +10 ns compulsory-latency step, by class");

    model::Platform base = model::Platform::paperBaseline();
    model::SensitivityAnalyzer an(makeSolver(argc, argv), base);

    Table t({"step ending at (ns)", "Enterprise", "Big Data", "HPC"});
    std::vector<std::vector<double>> csv;
    std::vector<std::vector<model::DerivativePoint>> per_class;
    for (const auto &p : classMixes()) {
        per_class.push_back(model::SensitivityAnalyzer::latencyDerivative(
            an.latencySweep(p, 60.0, 10.0)));
    }
    for (std::size_t i = 0; i < per_class.front().size(); ++i) {
        t.addRow({formatDouble(per_class[0][i].x, 0),
                  formatPercent(per_class[0][i].dCpiPct / 100.0, 2),
                  formatPercent(per_class[1][i].dCpiPct / 100.0, 2),
                  formatPercent(per_class[2][i].dCpiPct / 100.0, 2)});
        csv.push_back({per_class[0][i].x, per_class[0][i].dCpiPct,
                       per_class[1][i].dCpiPct,
                       per_class[2][i].dCpiPct});
    }
    t.setFootnote("\nPaper: ~3.5%/10ns for enterprise, ~2.5%/10ns for "
                  "big data, 0% for HPC, nearly constant across "
                  "steps. Column order matches classMixes(): "
                  "Enterprise, Big Data, HPC.");
    t.print(std::cout);
    csvBlock("fig11", {"step_ns", "enterprise_pct", "bigdata_pct",
                       "hpc_pct"}, csv);
    return 0;
}
