/**
 * @file
 * Shared helpers for the model-application benches (Figs 8-11,
 * Table 7): baseline platform, class parameters, and the queuing
 * model (analytic by default; --measured rebuilds it from an MLC
 * sweep on the simulator, the paper's actual procedure).
 */

#ifndef MEMSENSE_BENCH_MODEL_COMMON_HH
#define MEMSENSE_BENCH_MODEL_COMMON_HH

#include <string>
#include <vector>

#include "bench_common.hh"
#include "measure/loaded_latency.hh"
#include "model/memsense.hh"

namespace memsense::bench
{

/**
 * Build the solver; --measured derives the queuing curve via MLC.
 * With any fault-tolerance flag set, the MLC sweeps run through the
 * resilient path: failing delay points are retried then dropped (and
 * reported), and --checkpoint makes the sweep family resumable.
 */
inline model::Solver
makeSolver(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--measured") {
            inform("measuring the queuing model on the simulator "
                   "(Fig. 7 procedure) ...");
            auto setups = measure::paperFig7Setups();
            for (auto &s : setups) {
                s.delayCycles = {0, 8, 16, 32, 48, 96, 256, 1024};
                s.measure = nsToPicos(250'000.0);
            }
            const measure::ResilienceConfig rc =
                resilienceArgs(argc, argv);
            if (!rc.enabled())
                return model::Solver(
                    measure::measureQueuingModel(setups));
            measure::FailureManifest manifest;
            model::Solver solver(measure::measureQueuingModelResilient(
                setups, rc, &manifest));
            std::size_t points = 0;
            for (const auto &s : setups)
                points += s.delayCycles.size();
            reportFailures("mlc", manifest, points);
            return solver;
        }
    }
    return model::Solver();
}

/** The three class-mean parameter sets (published Table 6 values). */
inline std::vector<model::WorkloadParams>
classMixes()
{
    return model::paper::classParams();
}

} // namespace memsense::bench

#endif // MEMSENSE_BENCH_MODEL_COMMON_HH
