/**
 * @file
 * Shared helpers for the model-application benches (Figs 8-11,
 * Table 7): baseline platform, class parameters, and the queuing
 * model (analytic by default; --measured rebuilds it from an MLC
 * sweep on the simulator, the paper's actual procedure).
 */

#ifndef MEMSENSE_BENCH_MODEL_COMMON_HH
#define MEMSENSE_BENCH_MODEL_COMMON_HH

#include <string>
#include <vector>

#include "bench_common.hh"
#include "measure/loaded_latency.hh"
#include "model/memsense.hh"

namespace memsense::bench
{

/** Build the solver; --measured derives the queuing curve via MLC. */
inline model::Solver
makeSolver(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--measured") {
            inform("measuring the queuing model on the simulator "
                   "(Fig. 7 procedure) ...");
            auto setups = measure::paperFig7Setups();
            for (auto &s : setups) {
                s.delayCycles = {0, 8, 16, 32, 48, 96, 256, 1024};
                s.measure = nsToPicos(250'000.0);
            }
            return model::Solver(measure::measureQueuingModel(setups));
        }
    }
    return model::Solver();
}

/** The three class-mean parameter sets (published Table 6 values). */
inline std::vector<model::WorkloadParams>
classMixes()
{
    return model::paper::classParams();
}

} // namespace memsense::bench

#endif // MEMSENSE_BENCH_MODEL_COMMON_HH
