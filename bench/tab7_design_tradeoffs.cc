/**
 * @file
 * Table 7 reproduction: design tradeoffs — the performance value of
 * +1 GB/s/core of bandwidth vs. -10 ns of compulsory latency, and the
 * equivalence between the two, per workload class.
 *
 * Paper claims reproduced: enterprise and big data gain a few percent
 * from -10 ns and under ~1-2% from +1 GB/s/core; HPC gains ~20% from
 * bandwidth and nothing from latency; a finite tens-of-GB/s
 * bandwidth equivalence of 10 ns exists for enterprise/big data
 * (paper: 39.7 / 27.1 GB/s) while no latency reduction can match
 * bandwidth for HPC.
 */

#include <cmath>

#include "model_common.hh"
#include "model/equivalence.hh"
#include "serve/evaluator.hh"

using namespace memsense;
using namespace memsense::bench;

namespace
{

std::string
fmtOrNone(double v, const char *unit)
{
    if (std::isinf(v))
        return "none possible";
    // memsense-lint: allow(float-equal): exact 0.0 sentinel from the solver
    if (v == 0.0)
        return "0 (no benefit to match)";
    return strformat("%.1f %s", v, unit);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    benchInit(argc, argv);
    header("Table 7",
           "Design tradeoffs: +1 GB/s/core vs. -10 ns, and their "
           "equivalence, on the paper baseline");

    model::Platform base = model::Platform::paperBaseline();
    // The equivalence bisections revisit the same operating points
    // (every class shares the baseline, every probe re-solves it), so
    // run them through the memoizing evaluator instead of bare solves.
    serve::Evaluator eval(makeSolver(argc, argv));
    model::EquivalenceAnalyzer an(eval, base);

    Table t({"Class", "baseline CPI", "+1 GB/s/core gain",
             "-10 ns gain", "BW equivalent of 10 ns",
             "latency equiv. of 1 GB/s/core", "paper: BW equiv",
             "paper: lat equiv"});
    std::vector<std::vector<double>> csv;
    auto paper_rows = model::paper::table7();
    const auto mixes = classMixes();
    for (const auto &p : mixes) {
        model::TradeoffSummary s = an.summarize(p);
        // Match this class's published row.
        const model::paper::Table7Row *ref = nullptr;
        for (const auto &r : paper_rows)
            if (r.cls == p.cls)
                ref = &r;
        t.addRow({s.name, formatDouble(s.baselineCpi, 3),
                  formatPercent(s.perfGainBandwidthPct / 100.0, 2),
                  formatPercent(s.perfGainLatencyPct / 100.0, 2),
                  fmtOrNone(s.bandwidthEquivalentGBps, "GB/s"),
                  fmtOrNone(s.latencyEquivalentNs, "ns"),
                  ref ? fmtOrNone(ref->bandwidthEquivalentGBps, "GB/s")
                      : "-",
                  ref ? fmtOrNone(ref->latencyEquivalentNs, "ns") : "-"});
        csv.push_back({s.baselineCpi, s.perfGainBandwidthPct,
                       s.perfGainLatencyPct, s.bandwidthEquivalentGBps,
                       s.latencyEquivalentNs});
    }
    t.setFootnote(
        "\nPaper headline: optimize bandwidth first for HPC-like "
        "mixes; optimize latency for enterprise/big data — latency "
        "reduction is \"easier and more profitable\" there.");
    t.print(std::cout);
    csvBlock("tab7",
             {"baseline_cpi", "bw_gain_pct", "lat_gain_pct",
              "bw_equiv_gbps", "lat_equiv_ns"},
             csv);
    const serve::CacheStats cs = eval.cacheStats();
    inform(strformat("evaluator cache: %llu hits / %llu misses "
                     "(%zu distinct operating points)",
                     static_cast<unsigned long long>(cs.hits),
                     static_cast<unsigned long long>(cs.misses),
                     cs.size));
    return 0;
}
