/**
 * @file
 * Fig. 7 reproduction: memory channel queuing delay vs. bandwidth
 * utilization, measured with the MLC clone on the simulator for the
 * paper's four test cases ({DDR3-1333, DDR3-1867} x {100% reads,
 * 2:1 read/write}), plus the composite curve the model uses.
 *
 * Paper claims reproduced: once bandwidth is normalized to each
 * configuration's achievable maximum, the four queuing-delay curves
 * nearly coincide below ~95% utilization, justifying one composite
 * curve; the delay grows sharply as utilization approaches the
 * stable limit.
 */

#include "bench_common.hh"
#include "measure/loaded_latency.hh"

using namespace memsense;
using namespace memsense::bench;

int
main(int argc, char **argv)
{
    benchInit(argc, argv);
    bool fast = fastMode(argc, argv);
    header("Figure 7",
           "Queuing delay vs. bandwidth utilization (MLC clone: 1 "
           "latency probe + 7 bandwidth generators)");

    const measure::ResilienceConfig resilience =
        resilienceArgs(argc, argv);
    auto setups = measure::paperFig7Setups();
    for (std::size_t i = 0; i < setups.size(); ++i) {
        auto &s = setups[i];
        s.jobs = jobsArg(argc, argv);
        if (fast) {
            s.delayCycles = {0, 8, 24, 48, 96, 256, 1024, 2048};
            s.measure = nsToPicos(200'000.0);
        }
        s.resilience = resilience;
        if (!resilience.checkpointPath.empty())
            s.resilience.checkpointPath =
                resilience.checkpointPath + ".mlc" + std::to_string(i);
    }

    measure::FailureManifest manifest;
    std::size_t total_points = 0;
    std::vector<stats::PiecewiseCurve> curves;
    measure::PhaseTimer phase("sweep");
    for (const auto &setup : setups) {
        measure::LoadedLatencyCurve c;
        if (resilience.enabled()) {
            measure::ResilientLoadedLatency r =
                measure::sweepLoadedLatencyResilient(setup);
            manifest.merge(r.manifest);
            total_points += r.totalJobs;
            c = std::move(r.curve);
        } else {
            c = measure::sweepLoadedLatency(setup);
        }
        std::cout << strformat(
            "\n-- DDR3-%.0f, %.0f%% reads: unloaded %.1f ns, "
            "achievable %.1f GB/s --\n",
            setup.memMtPerSec, setup.readFraction * 100.0, c.unloadedNs,
            c.maxBandwidthGBps);
        Table t({"inj. delay (cyc)", "BW (GB/s)", "utilization",
                 "loaded latency (ns)", "queuing delay (ns)"});
        std::vector<std::vector<double>> csv;
        for (const auto &p : c.points) {
            double util = p.bandwidthGBps / c.maxBandwidthGBps;
            t.addRow({std::to_string(p.delayCycles),
                      formatDouble(p.bandwidthGBps, 2),
                      formatPercent(util, 1),
                      formatDouble(p.latencyNs, 1),
                      formatDouble(p.latencyNs - c.unloadedNs, 1)});
            csv.push_back({static_cast<double>(p.delayCycles),
                           p.bandwidthGBps, util, p.latencyNs,
                           p.latencyNs - c.unloadedNs});
        }
        t.print(std::cout);
        csvBlock(strformat("fig07_ddr%.0f_r%.0f", setup.memMtPerSec,
                           setup.readFraction * 100.0),
                 {"delay_cyc", "bw_gbps", "util", "latency_ns",
                  "queuing_ns"},
                 csv);
        curves.push_back(stats::PiecewiseCurve::fromSamples(
                             c.toQueuingSamples(), 16)
                             .monotoneEnvelope());
    }

    // Composite (the paper averages the four curves into one model).
    stats::PiecewiseCurve composite =
        stats::PiecewiseCurve::composite(curves, 16).monotoneEnvelope();
    std::cout << "\n-- Composite queuing model (average of the four "
                 "normalized curves) --\n";
    Table t({"utilization", "queuing delay (ns)"});
    std::vector<std::vector<double>> csv;
    for (std::size_t i = 0; i < composite.size(); ++i) {
        const auto &k = composite.knot(i);
        t.addRow({formatPercent(k.x, 1), formatDouble(k.y, 1)});
        csv.push_back({k.x, k.y});
    }
    t.setFootnote("\nPaper claim: the per-configuration curves are "
                  "\"very similar despite the read/write mix and DDR "
                  "speed changes\" up to ~95% utilization — compare "
                  "the queuing-delay columns across the four blocks "
                  "above at matched utilization.");
    t.print(std::cout);
    csvBlock("fig07_composite", {"util", "queuing_ns"}, csv);
    if (resilience.enabled())
        reportFailures("fig07", manifest, total_points);
    return 0;
}
