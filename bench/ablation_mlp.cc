/**
 * @file
 * Ablation (paper Eq. 3): BF ~ 1/MLP. Sweeping the core's MSHR count
 * (the MLP limit) and re-fitting the blocking factor shows the
 * predicted inverse relationship emerge from the simulator.
 */

#include "characterize_common.hh"
#include "model/cpi_model.hh"

using namespace memsense;
using namespace memsense::bench;

int
main(int argc, char **argv)
{
    benchInit(argc, argv);
    header("Ablation: MLP (MSHR count)",
           "Fitted blocking factor vs. the core's MSHR limit "
           "(Eq. 3: BF ~ 1/MLP)");

    measure::FreqScalingConfig cfg = sweepConfig(true);
    Table t({"MSHRs", "BF (column store)", "implied MLP",
             "BF (spark)", "implied MLP "});
    std::vector<std::vector<double>> csv;
    for (std::uint32_t mshrs : {1u, 2u, 4u, 10u, 24u}) {
        cfg.mshrs = mshrs;
        auto cs = measure::characterize("column_store", cfg);
        auto sp = measure::characterize("spark", cfg);
        double bf_cs = cs.model.params.bf;
        double bf_sp = sp.model.params.bf;
        t.addRow({std::to_string(mshrs), formatDouble(bf_cs, 3),
                  bf_cs > 0 ? formatDouble(model::impliedMlp(bf_cs), 1)
                            : "inf",
                  formatDouble(bf_sp, 3),
                  bf_sp > 0 ? formatDouble(model::impliedMlp(bf_sp), 1)
                            : "inf"});
        csv.push_back({static_cast<double>(mshrs), bf_cs, bf_sp});
    }
    t.setFootnote("\nExpected: BF falls as MSHRs (MLP) grow, "
                  "saturating once the dependent-load fraction, not "
                  "the MSHR count, limits overlap.");
    t.print(std::cout);
    csvBlock("ablation_mlp", {"mshrs", "bf_column_store", "bf_spark"},
             csv);
    return 0;
}
