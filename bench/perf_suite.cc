/**
 * @file
 * Performance suite driver: one command that measures the repo.
 *
 * Runs the fixed end-to-end reproduction configs (fig03_cpi_fits and
 * fig07_queuing_delay, `--fast --quiet`, fixed seeds baked into the
 * drivers) at `--jobs 1` and `--jobs N`, separating the cold first
 * run from K warm repeats (median + MAD of the warm runs), plus the
 * google-benchmark microbench kernels. One extra instrumented run per
 * config collects the per-phase wall-time breakdown and the sweep
 * point count from the metrics registry (`<exp>.metrics.json`,
 * docs/observability.md). Everything lands in one schema-versioned
 * document:
 *
 *     {
 *       "schema": "memsense.bench.v1",
 *       "repeats": 3,
 *       "end_to_end": { "fig03_cpi_fits.jobs1": {
 *           "cold_s": ..., "warm_median_s": ..., "warm_mad_s": ...,
 *           "sweep_points": 24, "throughput_points_per_s": ...,
 *           "phases_ms": { "sweep": ..., "report": ... } }, ... },
 *       "microbench": { "BM_CacheLookup/2": { "median_ns": ... } },
 *       "baseline_pre_pr": { ...carried forward verbatim... }
 *     }
 *
 * The committed copy (BENCH_memsense.json at the repo root) is the
 * perf trajectory: refresh it with scripts/check_perf.sh, which also
 * diffs a fresh run against the committed one and flags regressions.
 * The "baseline_pre_pr" section is carried forward verbatim from the
 * file named by --carry-baseline so the pre-campaign reference never
 * gets overwritten by a refresh.
 *
 * Wall-clock numbers are machine- and load-dependent; the suite
 * reports medians to shave scheduler noise, but cross-machine
 * comparisons are only meaningful within one BENCH file's history.
 *
 * Usage:
 *   perf_suite [--repeats K] [--jobs-list 1,2] [--bin-dir DIR]
 *              [--out FILE] [--carry-baseline FILE]
 *              [--skip-microbench] [--benchmark-filter REGEX]
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "serve/server.hh"
#include "serve/transport.hh"
#include "util/error.hh"
#include "util/string_util.hh"

namespace
{

using memsense::bench::stringArg;

double
medianOf(std::vector<double> v)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    const std::size_t n = v.size();
    return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

double
madOf(const std::vector<double> &v)
{
    const double med = medianOf(v);
    std::vector<double> dev;
    dev.reserve(v.size());
    for (double x : v)
        dev.push_back(std::abs(x - med));
    return medianOf(dev);
}

/** Format a double with enough digits for a perf log (not %.17g). */
std::string
num(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

/** Run a shell command, discarding output; returns wall seconds. */
double
timedRun(const std::string &cmd)
{
    // memsense-lint: allow(no-nondeterminism): this driver MEASURES
    // wall time; the sim results it times stay seed-deterministic
    const auto start = std::chrono::steady_clock::now();
    const int rc = std::system((cmd + " > /dev/null 2>&1").c_str());
    // memsense-lint: allow(no-nondeterminism): wall-time measurement
    const auto end = std::chrono::steady_clock::now();
    if (rc != 0)
        throw memsense::ConfigError("command failed (" +
                                     std::to_string(rc) + "): " + cmd);
    return std::chrono::duration<double>(end - start).count();
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return "";
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/**
 * Pull `"key": <number>` out of a flat JSON section. This is not a
 * JSON parser — it only needs to read the documents this repo writes
 * (sorted keys, one scalar per key, no escapes in the keys we ask
 * for), which keeps the suite dependency-free.
 */
bool
extractNumber(const std::string &doc, const std::string &key,
              double &value_out)
{
    const std::string needle = "\"" + key + "\":";
    const std::size_t pos = doc.find(needle);
    if (pos == std::string::npos)
        return false;
    value_out = std::strtod(doc.c_str() + pos + needle.size(), nullptr);
    return true;
}

/**
 * Extract the value of `"section": { ... }` with brace matching,
 * returning the braces too; "" when absent. Used to carry the
 * baseline_pre_pr object forward verbatim and to scope gauge scans
 * to the "gauges" section.
 */
std::string
extractObject(const std::string &doc, const std::string &section)
{
    const std::string needle = "\"" + section + "\":";
    std::size_t pos = doc.find(needle);
    if (pos == std::string::npos)
        return "";
    pos = doc.find('{', pos + needle.size());
    if (pos == std::string::npos)
        return "";
    int depth = 0;
    for (std::size_t i = pos; i < doc.size(); ++i) {
        if (doc[i] == '{')
            ++depth;
        else if (doc[i] == '}' && --depth == 0)
            return doc.substr(pos, i - pos + 1);
    }
    return "";
}

/** One end-to-end measurement target. */
struct E2eConfig
{
    std::string exe;    ///< sibling binary name
    std::string args;   ///< fixed arguments (seeds live in the driver)
    int jobs = 1;
};

struct E2eResult
{
    std::string key;
    std::string command;
    double coldS = 0.0;
    std::vector<double> warmS;
    double sweepPoints = 0.0;
    std::vector<std::pair<std::string, double>> phasesMs;
};

/** Scan `"phase.<name>.wall_ms": v` gauges out of a metrics doc. */
std::vector<std::pair<std::string, double>>
extractPhases(const std::string &metricsDoc)
{
    std::vector<std::pair<std::string, double>> phases;
    const std::string gauges = extractObject(metricsDoc, "gauges");
    std::size_t pos = 0;
    const std::string prefix = "\"phase.";
    const std::string suffix = ".wall_ms\":";
    while ((pos = gauges.find(prefix, pos)) != std::string::npos) {
        const std::size_t nameStart = pos + prefix.size();
        const std::size_t sufPos = gauges.find(suffix, nameStart);
        if (sufPos == std::string::npos)
            break;
        const std::string name = gauges.substr(nameStart,
                                               sufPos - nameStart);
        const double v = std::strtod(
            gauges.c_str() + sufPos + suffix.size(), nullptr);
        phases.emplace_back(name, v);
        pos = sufPos + suffix.size();
    }
    return phases;
}

E2eResult
runE2e(const std::string &binDir, const E2eConfig &cfg, int repeats,
       const std::string &scratch)
{
    E2eResult r;
    r.key = cfg.exe + ".jobs" + std::to_string(cfg.jobs);
    const std::string base = binDir + "/" + cfg.exe + " " + cfg.args +
                             " --jobs " + std::to_string(cfg.jobs) +
                             " --out-dir " + scratch;
    r.command = cfg.exe + " " + cfg.args + " --jobs " +
                std::to_string(cfg.jobs);

    std::fprintf(stderr, "perf_suite: %s (cold + %d warm)\n",
                 r.command.c_str(), repeats);
    r.coldS = timedRun(base);
    for (int i = 0; i < repeats; ++i)
        r.warmS.push_back(timedRun(base));

    // One instrumented run for the phase breakdown and point count.
    // Kept out of the timed set: metrics collection is cheap but not
    // free, and mixing it in would bias the medians.
    timedRun(base + " --metrics");
    const std::string metrics =
        readFile(scratch + "/" + cfg.exe + ".metrics.json");
    double points = 0.0;
    if (extractNumber(metrics, "measure.jobs_run", points))
        r.sweepPoints = points;
    r.phasesMs = extractPhases(metrics);
    return r;
}

void
appendE2eJson(std::ostringstream &out, const E2eResult &r, bool last)
{
    const double warmMedian = medianOf(r.warmS);
    out << "    \"" << r.key << "\": {\n"
        << "      \"command\": \"" << r.command << "\",\n"
        << "      \"cold_s\": " << num(r.coldS) << ",\n"
        << "      \"warm_runs_s\": [";
    for (std::size_t i = 0; i < r.warmS.size(); ++i)
        out << (i ? ", " : "") << num(r.warmS[i]);
    out << "],\n"
        << "      \"warm_median_s\": " << num(warmMedian) << ",\n"
        << "      \"warm_mad_s\": " << num(madOf(r.warmS)) << ",\n"
        << "      \"sweep_points\": " << num(r.sweepPoints) << ",\n"
        << "      \"throughput_points_per_s\": "
        << num(warmMedian > 0.0 ? r.sweepPoints / warmMedian : 0.0)
        << ",\n"
        << "      \"phases_ms\": {";
    for (std::size_t i = 0; i < r.phasesMs.size(); ++i)
        out << (i ? ", " : "") << "\"" << r.phasesMs[i].first
            << "\": " << num(r.phasesMs[i].second);
    out << "}\n"
        << "    }" << (last ? "\n" : ",\n");
}

/**
 * Run perf_microbench with JSON output and distill the aggregate
 * rows: for each kernel, its `_median` and `_mad` real-time values.
 */
std::vector<std::pair<std::string, std::pair<double, double>>>
runMicrobench(const std::string &binDir, const std::string &filter,
              const std::string &scratch)
{
    const std::string jsonPath = scratch + "/microbench.json";
    std::string cmd = binDir + "/perf_microbench" +
                      " --benchmark_format=json --benchmark_out=" +
                      jsonPath + " --benchmark_out_format=json";
    if (!filter.empty())
        cmd += " --benchmark_filter='" + filter + "'";
    std::fprintf(stderr, "perf_suite: perf_microbench%s\n",
                 filter.empty() ? ""
                                : (" (filter " + filter + ")").c_str());
    timedRun(cmd);

    // google-benchmark JSON: one object per row in "benchmarks"; the
    // aggregate rows carry "name": "<bench>_<stat>" and "real_time".
    std::vector<std::pair<std::string, std::pair<double, double>>> out;
    const std::string doc = readFile(jsonPath);
    std::size_t pos = 0;
    while ((pos = doc.find("\"name\":", pos)) != std::string::npos) {
        const std::size_t q1 = doc.find('"', pos + 7);
        const std::size_t q2 = doc.find('"', q1 + 1);
        if (q1 == std::string::npos || q2 == std::string::npos)
            break;
        std::string name = doc.substr(q1 + 1, q2 - q1 - 1);
        pos = q2 + 1;
        const bool isMedian =
            name.size() > 7 &&
            name.compare(name.size() - 7, 7, "_median") == 0;
        const bool isMad =
            name.size() > 4 &&
            name.compare(name.size() - 4, 4, "_mad") == 0;
        if (!isMedian && !isMad)
            continue;
        const std::size_t next = doc.find("\"name\":", pos);
        const std::string row = doc.substr(
            pos, next == std::string::npos ? doc.size() - pos
                                          : next - pos);
        double rt = 0.0;
        if (!extractNumber(row, "real_time", rt))
            continue;
        name.erase(name.size() - (isMedian ? 7 : 4));
        // Strip the "/repeats:K" suffix benchmark appends.
        const std::size_t rep = name.find("/repeats:");
        if (rep != std::string::npos)
            name.erase(rep);
        auto it = std::find_if(out.begin(), out.end(),
                               [&](const auto &e) {
                                   return e.first == name;
                               });
        if (it == out.end()) {
            out.emplace_back(name, std::make_pair(0.0, 0.0));
            it = out.end() - 1;
        }
        (isMedian ? it->second.first : it->second.second) = rt;
    }
    return out;
}

// ---------------------------------------------------------------------
// serve_batch: the server's worker path with and without batching.

/** Fixture shape of the serve_batch microbench: 16 connections each
 *  replaying the same 64 unique operating points — cross-client
 *  duplicates in flight at the same instant, the mix batching is
 *  built for. The parallel reader threads outpace the two workers, so
 *  the admission queue actually holds multi-request batches. */
constexpr int kServeBatchUnique = 64;
constexpr int kServeBatchConns = 16;
constexpr int kServeBatchTotal = kServeBatchUnique * kServeBatchConns;

/**
 * One timed pass: a fresh (cold-cache) in-process server, every
 * connection's requests written up front, then every reply drained.
 * Returns requests per wall-second. Admission bounds are raised far
 * above the fixture so nothing sheds — the pass measures the
 * dequeue/solve/reply pipeline, not admission control.
 */
double
serveBatchPassRps(std::size_t max_batch, double linger_ms,
                  int eval_jobs)
{
    using namespace memsense::serve;
    ServerOptions opts;
    opts.workers = 2;
    opts.pollMs = 1;
    opts.maxQueueDepth = kServeBatchTotal * 2;
    opts.maxInflightBytes = 64u << 20;
    opts.maxBatch = max_batch;
    opts.batchLingerMs = linger_ms;
    opts.eval.jobs = eval_jobs;
    Server server(opts);
    auto transport_owned = std::make_unique<InProcessTransport>();
    InProcessTransport *transport = transport_owned.get();
    server.addTransport(std::move(transport_owned));
    server.start();
    std::vector<InProcessClient> clients;
    clients.reserve(kServeBatchConns);
    for (int c = 0; c < kServeBatchConns; ++c)
        clients.push_back(transport->connect());

    std::vector<std::string> lines;
    lines.reserve(kServeBatchTotal);
    for (int c = 0; c < kServeBatchConns; ++c)
        for (int shape = 0; shape < kServeBatchUnique; ++shape)
            lines.push_back(
                "{\"id\":\"b" + std::to_string(c) + "-" +
                std::to_string(shape) +
                "\",\"workload\":{\"mpki\":" +
                std::to_string(5.0 + 0.25 * shape) + "}}");

    // memsense-lint: allow(no-nondeterminism): this driver MEASURES
    // wall time; the solves it times stay deterministic
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kServeBatchTotal; ++i)
        clients[i / kServeBatchUnique].send(lines[i]);
    std::string reply;
    for (InProcessClient &client : clients) {
        for (int i = 0; i < kServeBatchUnique; ++i) {
            if (client.recv(reply, 30000) != LineStream::Read::Line)
                throw memsense::ConfigError(
                    "serve_batch: a reply never arrived");
        }
    }
    // memsense-lint: allow(no-nondeterminism): wall-time measurement
    const auto end = std::chrono::steady_clock::now();
    server.stop();
    const double seconds =
        std::chrono::duration<double>(end - start).count();
    return seconds > 0.0 ? kServeBatchTotal / seconds : 0.0;
}

struct ServeBatchResult
{
    std::vector<double> baselineRps; ///< maxBatch=1: one job per pass
    std::vector<double> batchedRps;  ///< maxBatch=32: coalesced passes
};

ServeBatchResult
runServeBatch(int repeats)
{
    std::fprintf(stderr,
                 "perf_suite: serve_batch (%d reqs, %d unique, "
                 "%d reps/mode)\n",
                 kServeBatchTotal, kServeBatchUnique, repeats);
    ServeBatchResult r;
    // Interleave the modes so machine-load drift hits both equally.
    for (int i = 0; i < repeats; ++i) {
        r.baselineRps.push_back(serveBatchPassRps(1, 0.0, 1));
        r.batchedRps.push_back(serveBatchPassRps(32, 0.0, 1));
    }
    return r;
}

void
appendServeBatchJson(std::ostringstream &out, const ServeBatchResult &r)
{
    const double base = medianOf(r.baselineRps);
    const double batched = medianOf(r.batchedRps);
    out << "  \"serve_batch\": {\n"
        << "    \"requests\": " << kServeBatchTotal << ",\n"
        << "    \"unique_shapes\": " << kServeBatchUnique << ",\n"
        << "    \"baseline_runs_rps\": [";
    for (std::size_t i = 0; i < r.baselineRps.size(); ++i)
        out << (i ? ", " : "") << num(r.baselineRps[i]);
    out << "],\n"
        << "    \"batched_runs_rps\": [";
    for (std::size_t i = 0; i < r.batchedRps.size(); ++i)
        out << (i ? ", " : "") << num(r.batchedRps[i]);
    out << "],\n"
        << "    \"baseline_rps\": " << num(base) << ",\n"
        << "    \"batched_rps\": " << num(batched) << ",\n"
        << "    \"batched_speedup\": "
        << num(base > 0.0 ? batched / base : 0.0) << "\n"
        << "  },\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace memsense;
    bench::benchInit(argc, argv);

    std::string binDir = stringArg(argc, argv, "--bin-dir");
    if (binDir.empty()) {
        const std::string self = argv[0];
        const std::size_t slash = self.find_last_of('/');
        binDir = slash == std::string::npos ? "." : self.substr(0, slash);
    }
    const std::string repeatsArg = stringArg(argc, argv, "--repeats");
    const int repeats =
        repeatsArg.empty() ? 3 : std::max(1, std::atoi(repeatsArg.c_str()));
    std::string jobsList = stringArg(argc, argv, "--jobs-list");
    if (jobsList.empty())
        jobsList = "1,2";
    std::string outPath = stringArg(argc, argv, "--out");
    if (outPath.empty())
        outPath = "BENCH_memsense.json";
    const std::string carryPath =
        stringArg(argc, argv, "--carry-baseline");
    const std::string filter =
        stringArg(argc, argv, "--benchmark-filter");
    bool skipMicro = false;
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == std::string("--skip-microbench"))
            skipMicro = true;

    char scratchTemplate[] = "/tmp/memsense_perf_XXXXXX";
    const char *scratchC = mkdtemp(scratchTemplate);
    if (scratchC == nullptr)
        throw ConfigError("mkdtemp failed for the scratch directory");
    const std::string scratch = scratchC;

    std::vector<E2eConfig> configs;
    for (const std::string &tok : split(jobsList, ',')) {
        const int j = std::atoi(tok.c_str());
        if (j < 1)
            throw ConfigError("--jobs-list entries must be >= 1");
        configs.push_back({"fig03_cpi_fits", "--fast --quiet", j});
        configs.push_back({"fig07_queuing_delay", "--fast --quiet", j});
    }

    std::vector<E2eResult> results;
    for (const E2eConfig &cfg : configs)
        results.push_back(runE2e(binDir, cfg, repeats, scratch));

    std::vector<std::pair<std::string, std::pair<double, double>>> micro;
    if (!skipMicro)
        micro = runMicrobench(binDir, filter, scratch);

    const ServeBatchResult serveBatch = runServeBatch(repeats);

    std::string baseline;
    if (!carryPath.empty())
        baseline = extractObject(readFile(carryPath), "baseline_pre_pr");

    std::ostringstream out;
    out << "{\n"
        << "  \"schema\": \"memsense.bench.v1\",\n"
        << "  \"suite\": \"perf_suite\",\n"
        << "  \"repeats\": " << repeats << ",\n"
        << "  \"jobs_list\": \"" << jobsList << "\",\n"
        << "  \"end_to_end\": {\n";
    for (std::size_t i = 0; i < results.size(); ++i)
        appendE2eJson(out, results[i], i + 1 == results.size());
    out << "  },\n"
        << "  \"microbench\": {";
    for (std::size_t i = 0; i < micro.size(); ++i)
        out << (i ? ",\n    " : "\n    ") << "\"" << micro[i].first
            << "\": {\"median_ns\": " << num(micro[i].second.first)
            << ", \"mad_ns\": " << num(micro[i].second.second) << "}";
    out << (micro.empty() ? "" : "\n  ") << "},\n";
    appendServeBatchJson(out, serveBatch);
    out << "  \"baseline_pre_pr\": "
        << (baseline.empty() ? "{}" : baseline) << "\n"
        << "}\n";

    // Atomic write, same temp+rename discipline as the metrics file.
    const std::string tmp = outPath + ".tmp";
    {
        std::ofstream f(tmp);
        if (!f)
            throw ConfigError("cannot write " + tmp);
        f << out.str();
    }
    if (std::rename(tmp.c_str(), outPath.c_str()) != 0)
        throw ConfigError("cannot rename " + tmp + " -> " + outPath);
    std::fprintf(stderr, "perf_suite: wrote %s\n", outPath.c_str());
    std::system(("rm -rf " + scratch).c_str());
    return 0;
}
