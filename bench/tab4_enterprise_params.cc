/**
 * @file
 * Table 4 reproduction: fitted workload parameters for the enterprise
 * workloads.
 *
 * The paper's per-row Table 4 values were not recoverable from the
 * available copy; the "paper" columns show the values we inferred
 * from the published Table 6 class means (see model/paper_data.hh).
 * Paper claims reproduced: the enterprise class carries the highest
 * blocking factors of all classes (ineffective prefetching over
 * pointer-heavy access, Sec. VI.A).
 */

#include "characterize_common.hh"

int
main(int argc, char **argv)
{
    using namespace memsense::bench;
    benchInit(argc, argv);
    header("Table 4", "Workload parameters for enterprise "
                      "(fitted on the simulator vs. inferred targets)");
    auto chars = characterizeIds(
        {"virtualization", "web_caching", "oltp", "jvm"},
        sweepConfig(argc, argv), "tab4");
    printParamTable("tab4", chars);
    return 0;
}
