/**
 * @file
 * Ablation: the hardware-thread (SMT) demand scaling decision.
 *
 * The paper's footnote 1 enables Hyper-Threading ("creating 16
 * hardware threads or logical processors") and its per-thread
 * counter values feed Eq. 4. This ablation shows why the distinction
 * matters: with demand scaled by 8 physical cores only, the HPC class
 * demand (~41.5 GB/s) sits exactly at the baseline's 41.8 GB/s supply
 * and nothing is firmly bandwidth bound; with 16 hardware threads the
 * HPC class demand doubles and all of the paper's Fig. 10 / Table 7
 * HPC behavior follows.
 */

#include "bench_common.hh"
#include "model/memsense.hh"

using namespace memsense;
using namespace memsense::bench;

int
main(int argc, char **argv)
{
    benchInit(argc, argv);
    header("Ablation: SMT demand scaling",
           "Class behavior with Eq. 4 demand scaled by physical cores "
           "(smt=1) vs. hardware threads (smt=2, the paper's "
           "footnote 1)");

    model::Solver solver;
    Table t({"class", "smt", "unthrottled demand (GB/s)", "CPI",
             "BW bound", "+10ns impact"});
    std::vector<std::vector<double>> csv;
    for (int smt : {1, 2}) {
        model::Platform plat = model::Platform::paperBaseline();
        plat.smt = smt;
        for (const auto &p : model::paper::classParams()) {
            // memsense-lint: allow(no-uncached-batch-solve): every
            // (smt, class, latency) point is solved exactly once
            model::OperatingPoint op = solver.solve(p, plat);
            // Demand at the compulsory-latency CPI (no queue feedback).
            double cpi0 = model::effectiveCpi(
                p, plat.nsToCycles(plat.memory.compulsoryNs));
            double demand = model::bandwidthDemandTotal(
                p, cpi0, plat.cyclesPerSecond(),
                plat.hardwareThreads());

            model::Platform slower = plat;
            slower.memory = plat.memory.withCompulsoryNs(85.0);
            double d10 =
                (solver.solve(p, slower).cpiEff / op.cpiEff - 1.0) *
                100.0;

            t.addRow({p.name, std::to_string(smt),
                      formatDouble(demand / 1e9, 1),
                      formatDouble(op.cpiEff, 3),
                      op.bandwidthBound ? "yes" : "no",
                      formatPercent(d10 / 100.0, 2)});
            csv.push_back({static_cast<double>(smt), demand / 1e9,
                           op.cpiEff, op.bandwidthBound ? 1.0 : 0.0,
                           d10});
        }
    }
    t.setFootnote(strformat(
        "\nEffective supply: %.1f GB/s. With smt=1 the HPC demand "
        "barely grazes it (borderline regime, residual latency "
        "sensitivity); with smt=2 HPC is decisively bandwidth bound "
        "and latency-flat — the paper's reported behavior.",
        model::Platform::paperBaseline()
            .memory.effectiveBandwidthGBps()));
    t.print(std::cout);
    csvBlock("ablation_smt",
             {"smt", "demand_gbps", "cpi", "bw_bound", "d10_pct"}, csv);
    return 0;
}
