/**
 * @file
 * Sec. IV.D extension: phase-weighted model application.
 *
 * The paper notes the model can be applied "to multiple program
 * phases independently ... provided we are able to apply a weight to
 * each phase based on the relative number of instructions". This
 * bench builds a two-phase Spark-like job (map: gather-heavy;
 * shuffle: write-heavy) and compares the phase-aware evaluation
 * against the single-phase averaged-parameter shortcut across
 * bandwidth configurations — quantifying when the shortcut is safe
 * (the paper's "provided bandwidth demand does not reach capacity"
 * caveat).
 */

#include "bench_common.hh"
#include "model/paper_data.hh"
#include "model/phases.hh"
#include "model/sensitivity.hh"

using namespace memsense;
using namespace memsense::bench;

int
main(int argc, char **argv)
{
    benchInit(argc, argv);
    header("Phase-weighted model (Sec. IV.D)",
           "Phase-aware vs. averaged-parameter CPI across bandwidth "
           "configurations");

    model::Phase map;
    map.name = "map";
    map.weight = 2.0;
    map.params.name = "map";
    map.params.cpiCache = 0.85;
    map.params.bf = 0.26;
    map.params.mpki = 9.0;
    map.params.wbr = 0.45;

    model::Phase shuffle;
    shuffle.name = "shuffle";
    shuffle.weight = 1.0;
    shuffle.params.name = "shuffle";
    shuffle.params.cpiCache = 0.95;
    shuffle.params.bf = 0.12;
    shuffle.params.mpki = 14.0;
    shuffle.params.wbr = 0.9;

    model::PhasedWorkload job({map, shuffle});
    model::WorkloadParams avg = job.averagedParams("averaged");

    model::Platform base = model::Platform::paperBaseline();
    model::Solver solver;
    auto variants =
        model::SensitivityAnalyzer::standardBandwidthVariants(base.memory);

    Table t({"memory config", "phase-aware CPI", "averaged CPI",
             "shortcut error", "any phase BW bound"});
    std::vector<std::vector<double>> csv;
    for (const auto &mem : variants) {
        model::Platform plat = base;
        plat.memory = mem;
        model::PhasedPoint phased = job.evaluate(solver, plat);
        // memsense-lint: allow(no-uncached-batch-solve): one averaged
        // point per memory variant; the grid never repeats a point
        double averaged = solver.solve(avg, plat).cpiEff;
        bool any_bound = false;
        for (const auto &op : phased.perPhase)
            any_bound = any_bound || op.bandwidthBound;
        t.addRow({mem.describe(), formatDouble(phased.cpiEff, 3),
                  formatDouble(averaged, 3),
                  formatPercent(averaged / phased.cpiEff - 1.0, 1),
                  any_bound ? "yes" : "no"});
        csv.push_back({mem.effectiveBandwidthGBps(), phased.cpiEff,
                       averaged, any_bound ? 1.0 : 0.0});
    }
    t.setFootnote("\nThe shortcut is accurate while no phase is "
                  "bandwidth bound and degrades once the heavy phase "
                  "crosses the knee — the paper's Sec. IV.D caveat, "
                  "quantified.");
    t.print(std::cout);
    csvBlock("ext_phases",
             {"bw_gbps", "phased_cpi", "averaged_cpi", "any_bound"},
             csv);
    return 0;
}
