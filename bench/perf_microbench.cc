/**
 * @file
 * google-benchmark microbenchmarks for the library's hot paths: the
 * analytic solver, the model fitter, cache lookups, the DRAM channel,
 * and end-to-end simulation throughput (instructions simulated per
 * second of host time).
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <future>
#include <memory>
#include <vector>

#include "measure/runner.hh"
#include "util/thread_pool.hh"
#include "model/memsense.hh"
#include "serve/evaluator.hh"
#include "sim/machine.hh"
#include "stats/regression.hh"
#include "util/log.hh"
#include "workloads/factory.hh"

using namespace memsense;

namespace
{

/**
 * Median absolute deviation: the robust spread statistic reported next
 * to the median for every benchmark. A single preempted repetition
 * inflates stddev arbitrarily but moves MAD barely at all, so the
 * perf-suite artifact stays comparable run to run.
 */
double
medianOf(std::vector<double> v)
{
    std::sort(v.begin(), v.end());
    const std::size_t n = v.size();
    if (n == 0)
        return 0.0;
    return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

double
madOf(const std::vector<double> &v)
{
    const double med = medianOf(v);
    std::vector<double> dev;
    dev.reserve(v.size());
    for (double x : v)
        dev.push_back(std::abs(x - med));
    return medianOf(dev);
}

/**
 * Register the standard repetition policy: every benchmark runs
 * kRepetitions times and reports median + MAD aggregates only (the
 * per-repetition rows are noise in the committed artifact).
 */
constexpr int kRepetitions = 5;

void
applyRepetitions(benchmark::internal::Benchmark *b)
{
    b->Repetitions(kRepetitions)
        ->ReportAggregatesOnly(true)
        ->ComputeStatistics("mad", madOf);
}

/**
 * One process-wide evaluator, warmed on first use and reused across
 * repetitions: re-constructing it per repetition re-measured cold
 * cache construction instead of the steady-state hit path.
 */
serve::Evaluator &
sharedEvaluator()
{
    // memsense-lint: allow(mutable-global-state): warmed once and
    // reused across iterations by design (the cache-hit benchmark);
    // google-benchmark runs registrations serially
    static serve::Evaluator eval;
    return eval;
}

void
BM_SolverSolve(benchmark::State &state)
{
    model::Solver solver;
    model::Platform base = model::Platform::paperBaseline();
    auto params = model::paper::classParams();
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            solver.solve(params[i++ % params.size()], base));
    }
}
BENCHMARK(BM_SolverSolve)->Apply(applyRepetitions);

/** Cold path through the memoizing evaluator: every solve misses. */
void
BM_EvaluatorColdSolve(benchmark::State &state)
{
    serve::Evaluator eval;
    model::Platform base = model::Platform::paperBaseline();
    auto bd = model::paper::classParams(model::WorkloadClass::BigData);
    // Vary the latency each iteration so no request ever repeats: this
    // measures miss cost = fingerprint + probe + full fixed point.
    double extra = 0.0;
    for (auto _ : state) {
        model::Platform plat = base;
        plat.memory = base.memory.withCompulsoryNs(
            base.memory.compulsoryNs + extra);
        extra += 1e-6;
        benchmark::DoNotOptimize(eval.solve(bd, plat));
    }
}
BENCHMARK(BM_EvaluatorColdSolve)->Apply(applyRepetitions);

/** Warm path: the same request every iteration, served from cache. */
void
BM_EvaluatorCacheHit(benchmark::State &state)
{
    serve::Evaluator &eval = sharedEvaluator();
    model::Platform base = model::Platform::paperBaseline();
    auto bd = model::paper::classParams(model::WorkloadClass::BigData);
    benchmark::DoNotOptimize(eval.solve(bd, base)); // prime
    for (auto _ : state)
        benchmark::DoNotOptimize(eval.solve(bd, base));
}
BENCHMARK(BM_EvaluatorCacheHit)->Apply(applyRepetitions);

void
BM_EquivalenceSummary(benchmark::State &state)
{
    model::EquivalenceAnalyzer an(model::Solver(),
                                  model::Platform::paperBaseline());
    auto bd = model::paper::classParams(model::WorkloadClass::BigData);
    for (auto _ : state)
        benchmark::DoNotOptimize(an.summarize(bd));
}
BENCHMARK(BM_EquivalenceSummary)->Apply(applyRepetitions);

void
BM_LinearFit(benchmark::State &state)
{
    std::vector<double> xs;
    std::vector<double> ys;
    for (int i = 0; i < 64; ++i) {
        xs.push_back(i * 0.1);
        ys.push_back(0.9 + 0.2 * i * 0.1);
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(stats::linearFit(xs, ys));
}
BENCHMARK(BM_LinearFit)->Apply(applyRepetitions);

void
BM_CacheLookup(benchmark::State &state)
{
    // range(0) selects the geometry: a power-of-two set count takes
    // the mask-index path, a non-power-of-two one (3 MB, as in the
    // 3-core HPC LLC slice) falls back to modulo.
    sim::CacheConfig cfg;
    cfg.sizeBytes = static_cast<std::uint64_t>(state.range(0)) *
                    1024 * 1024;
    cfg.ways = 16;
    sim::SetAssocCache cache("bench", cfg);
    state.SetLabel(state.range(0) == 2 ? "pow2_sets" : "mod_sets");
    Rng rng(1);
    for (sim::Addr a = 0; a < 40'000; ++a)
        cache.insert(a, false, 0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.lookup(rng.nextBounded(80'000), false, 0));
    }
}
BENCHMARK(BM_CacheLookup)->Arg(2)->Arg(3)->Apply(applyRepetitions);

/** Dispatch overhead of the experiment engine's worker pool. */
void
BM_ThreadPoolDispatch(benchmark::State &state)
{
    ThreadPool pool(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        std::vector<std::future<int>> futures;
        futures.reserve(64);
        for (int i = 0; i < 64; ++i)
            futures.push_back(pool.submit([i]() { return i; }));
        int sum = 0;
        for (auto &f : futures)
            sum += f.get();
        benchmark::DoNotOptimize(sum);
    }
    state.counters["tasks_per_s"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * 64.0,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ThreadPoolDispatch)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Apply(applyRepetitions);

void
BM_DramChannelRead(benchmark::State &state)
{
    sim::DramConfig cfg;
    sim::DramChannel ch(cfg);
    Rng rng(2);
    Picos t = 0;
    for (auto _ : state) {
        t += 10'000;
        benchmark::DoNotOptimize(ch.read(
            static_cast<std::uint32_t>(rng.nextBounded(16)),
            rng.nextBounded(1024), t));
    }
}
BENCHMARK(BM_DramChannelRead)->Apply(applyRepetitions);

/** End-to-end: simulated instructions per host second. */
void
BM_SimulationThroughput(benchmark::State &state)
{
    setLogLevel(LogLevel::Warn);
    const char *ids[] = {"column_store", "oltp", "bwaves"};
    const char *id = ids[state.range(0)];
    state.SetLabel(id);

    measure::RunConfig rc;
    rc.workloadId = id;
    rc.cores = 4;
    rc.adaptiveWarmup = false;
    rc.warmup = nsToPicos(100'000.0);
    measure::WorkloadRun run(rc);
    run.warmup();

    std::uint64_t instructions = 0;
    for (auto _ : state) {
        sim::MachineSnapshot d =
            run.sampleInterval(nsToPicos(100'000.0));
        instructions += d.instructions;
    }
    state.counters["sim_instr_per_s"] = benchmark::Counter(
        static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
// Simulation throughput keeps 3 repetitions: each repetition re-warms
// a Machine, so the full 5 would dominate perf-suite wall time.
BENCHMARK(BM_SimulationThroughput)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond)
    ->Repetitions(3)
    ->ReportAggregatesOnly(true)
    ->ComputeStatistics("mad", madOf);

} // anonymous namespace

BENCHMARK_MAIN();
