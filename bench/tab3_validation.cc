/**
 * @file
 * Table 3 reproduction: computed versus measured CPI for Structured
 * Data across the frequency-scaling grid, two runs per core speed.
 *
 * Two validations are printed: (a) fitting the paper's own published
 * Table 3 grid and reproducing its computed-CPI row and error row;
 * (b) the same exercise on grids measured on the bundled simulator.
 * Paper claim reproduced: the Eq. 1 model predicts measured CPI
 * within a few percent at every grid point (the paper reports errors
 * within about +/-3%).
 */

#include <cmath>

#include "bench_common.hh"
#include "characterize_common.hh"
#include "model/paper_data.hh"

using namespace memsense;
using namespace memsense::bench;

namespace
{

void
printValidation(const std::string &title,
                const model::FittedModel &m,
                const std::vector<model::FitObservation> &obs)
{
    std::cout << "\n-- " << title
              << strformat(" (CPI_cache=%.3f, BF=%.3f, R^2=%.3f) --\n",
                           m.params.cpiCache, m.params.bf, m.fit.r2);
    Table t({"core GHz", "MPI", "MP (cycles)", "CPI computed",
             "CPI measured", "error"});
    std::vector<std::vector<double>> csv;
    double worst = 0.0;
    auto errs = model::validationErrors(m, obs);
    for (std::size_t i = 0; i < obs.size(); ++i) {
        const auto &o = obs[i];
        double predicted = m.predictCpi(o.latencyPerInstruction());
        t.addRow({formatDouble(o.coreGhz, 1), formatDouble(o.mpi, 4),
                  formatDouble(o.mpCycles, 0),
                  formatDouble(predicted, 2), formatDouble(o.cpiEff, 2),
                  formatPercent(errs[i], 1)});
        csv.push_back({o.coreGhz, o.mpi, o.mpCycles, predicted,
                       o.cpiEff, errs[i]});
        worst = std::max(worst, std::abs(errs[i]));
    }
    t.setFootnote(strformat("worst |error| = %.1f%% (paper: within "
                            "about +/-3%%)",
                            worst * 100.0));
    t.print(std::cout);
    csvBlock("tab3_" + title,
             {"ghz", "mpi", "mp_cycles", "cpi_computed", "cpi_measured",
              "error"},
             csv);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    benchInit(argc, argv);
    header("Table 3",
           "Computed vs. measured CPI for Structured Data");

    // (a) The paper's own measured grid, re-fit by our pipeline.
    auto paper_obs = model::paper::table3StructuredDataRuns();
    model::FittedModel paper_fit = model::fitModel(
        "Structured Data (paper grid)", model::WorkloadClass::BigData,
        paper_obs);
    printValidation("paper_grid", paper_fit, paper_obs);

    // (b) The same exercise on the bundled simulator.
    measure::FreqScalingConfig cfg = sweepConfig(argc, argv);
    cfg.runsPerPoint = 2; // Table 3 used two runs per point
    measure::Characterization c =
        measure::characterize("column_store", cfg);
    printValidation("simulator_grid", c.model, c.observations);
    return 0;
}
