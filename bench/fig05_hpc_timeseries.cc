/**
 * @file
 * Fig. 5 reproduction: measured CPU utilization, CPI, and memory
 * bandwidth vs. time for the four SPECfp HPC proxies.
 *
 * Paper claims reproduced: rate-style runs on three cores per socket,
 * full CPU utilization, steady CPI, and memory bandwidth far above
 * the other classes (the HPC MPKI is ~5x the big data class).
 */

#include "timeseries_common.hh"

int
main(int argc, char **argv)
{
    using namespace memsense::bench;
    benchInit(argc, argv);
    header("Figure 5",
           "CPU utilization / CPI / memory bandwidth vs. time, HPC "
           "proxies (100 us virtual sampling interval, 3 cores)");
    runTimeSeries("fig05", {"bwaves", "milc", "soplex", "wrf"},
                  fastMode(argc, argv), jobsArg(argc, argv),
                  resilienceArgs(argc, argv));
    return 0;
}
