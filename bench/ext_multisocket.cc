/**
 * @file
 * Sec. VIII extension: multi-socket NUMA placement sweep.
 *
 * The paper notes the model "can be extended in a straightforward way
 * to model additional memory architectures such as multi-socket".
 * This bench sweeps the remote-access fraction (NUMA placement
 * quality) on a two-socket version of the baseline and reports the
 * CPI cost per class, plus the effect of a strangled interconnect.
 */

#include "bench_common.hh"
#include "model/multisocket.hh"
#include "model/paper_data.hh"

using namespace memsense;
using namespace memsense::bench;

int
main(int argc, char **argv)
{
    benchInit(argc, argv);
    header("Multi-socket extension (Sec. VIII)",
           "CPI vs. remote-access fraction on 2 sockets (65 ns remote "
           "hop, 32 GB/s interconnect per socket)");

    model::MultiSocketPlatform plat;
    plat.socket = model::Platform::paperBaseline();
    plat.sockets = 2;

    model::MultiSocketSolver solver;
    const std::vector<double> fractions = {0.0, 0.1, 0.25, 0.5, 0.75,
                                           1.0};
    for (const auto &p : model::paper::classParams()) {
        auto sweep = solver.remoteFractionSweep(p, plat, fractions);
        std::cout << "\n-- " << p.name << " --\n";
        Table t({"remote fraction", "CPI", "vs. pinned", "local MP (ns)",
                 "remote MP (ns)", "link util"});
        std::vector<std::vector<double>> csv;
        for (std::size_t i = 0; i < sweep.size(); ++i) {
            const auto &pt = sweep[i];
            t.addRow({formatPercent(fractions[i], 0),
                      formatDouble(pt.cpiEff, 3),
                      formatPercent(pt.cpiEff / sweep[0].cpiEff - 1.0, 1),
                      formatDouble(pt.localMpNs, 1),
                      formatDouble(pt.remoteMpNs, 1),
                      formatPercent(pt.interconnectUtilization, 0)});
            csv.push_back({fractions[i], pt.cpiEff, pt.localMpNs,
                           pt.remoteMpNs, pt.interconnectUtilization});
        }
        t.print(std::cout);
        csvBlock("ext_numa_" + p.name,
                 {"remote_frac", "cpi", "local_mp", "remote_mp",
                  "link_util"},
                 csv);
    }

    // A thin interconnect turns placement into a first-order knob.
    std::cout << "\n-- interleaved placement (50% remote) vs. "
                 "interconnect width, HPC mix --\n";
    Table t({"link GB/s", "CPI", "link bound"});
    plat.remoteFraction = 0.5;
    for (double link : {4.0, 8.0, 16.0, 32.0, 64.0}) {
        plat.interconnectGBps = link;
        // memsense-lint: allow(no-uncached-batch-solve): multi-socket
        // extension solver; every link width is solved exactly once
        auto pt = solver.solve(
            model::paper::classParams(model::WorkloadClass::Hpc), plat);
        t.addRow({formatDouble(link, 0), formatDouble(pt.cpiEff, 3),
                  pt.interconnectBound ? "yes" : "no"});
    }
    t.print(std::cout);
    return 0;
}
