/**
 * @file
 * Fig. 8 reproduction: CPI increase vs. reduction in per-core memory
 * bandwidth for the three workload classes, starting from the paper's
 * baseline (1 socket, 8 cores + HT, 2.7 GHz, 75 ns, 4ch DDR3-1867 at
 * ~70% efficiency ~= 42 GB/s, 5.25 GB/s/core) and sweeping channel
 * count and channel speed.
 *
 * Paper claims reproduced: HPC shows by far the most impact and is
 * bandwidth bound at every point; big data tolerates modest
 * reductions but breaks sharply past roughly -2 to -3 GB/s/core;
 * enterprise degrades least; the loss-vs-bandwidth relationship is
 * clearly nonlinear.
 */

#include "model_common.hh"
#include "model/sensitivity.hh"
#include "serve/evaluator.hh"

using namespace memsense;
using namespace memsense::bench;

int
main(int argc, char **argv)
{
    benchInit(argc, argv);
    header("Figure 8",
           "CPI increase vs. per-core bandwidth reduction, by class");

    model::Platform base = model::Platform::paperBaseline();
    // Each class's sweep re-solves the shared baseline point; route
    // all solves through the memoizing evaluator so repeats are hits.
    serve::Evaluator eval(makeSolver(argc, argv));
    model::SensitivityAnalyzer an(eval, base);
    auto variants =
        model::SensitivityAnalyzer::standardBandwidthVariants(base.memory);

    for (const auto &p : classMixes()) {
        auto sweep = an.bandwidthSweep(p, variants);
        std::cout << "\n-- " << p.name << " --\n";
        Table t({"memory config", "GB/s per core", "delta vs. base",
                 "CPI", "CPI increase", "BW bound"});
        std::vector<std::vector<double>> csv;
        for (const auto &pt : sweep) {
            t.addRow({pt.memory.describe(),
                      formatDouble(pt.bwPerCoreGBps, 2),
                      formatDouble(pt.bwDeltaPerCoreGBps, 2),
                      formatDouble(pt.op.cpiEff, 3),
                      formatPercent(pt.cpiIncreaseFrac, 1),
                      pt.op.bandwidthBound ? "yes" : "no"});
            csv.push_back({pt.bwPerCoreGBps, pt.bwDeltaPerCoreGBps,
                           pt.op.cpiEff, pt.cpiIncreaseFrac,
                           pt.op.bandwidthBound ? 1.0 : 0.0});
        }
        t.print(std::cout);
        csvBlock("fig08_" + p.name,
                 {"bw_per_core", "delta", "cpi", "cpi_increase",
                  "bw_bound"},
                 csv);
    }
    std::cout << "\nBaseline: " << base.describe() << "\n";
    const serve::CacheStats cs = eval.cacheStats();
    inform(strformat("evaluator cache: %llu hits / %llu misses "
                     "(%zu distinct operating points)",
                     static_cast<unsigned long long>(cs.hits),
                     static_cast<unsigned long long>(cs.misses),
                     cs.size));
    return 0;
}
