/**
 * @file
 * Fig. 1 reproduction: trends in CPU and DRAM scaling.
 *
 * The paper's motivation figure — industry trend data showing server
 * core counts outgrowing DRAM density and per-channel bandwidth while
 * latency stays flat. Generated from the growth rates the paper cites
 * (cores +33-50%/yr) rather than measured; see DESIGN.md.
 */

#include "bench_common.hh"
#include "model/trends.hh"

using namespace memsense;
using namespace memsense::bench;

int
main(int argc, char **argv)
{
    benchInit(argc, argv);
    header("Figure 1", "Trends in CPU and DRAM scaling (normalized to "
                       "the base year)");

    auto series = model::scalingTrends(2012, 9);

    Table t({"year", "cores (rel)", "DRAM density (rel)",
             "channel BW (rel)", "latency (rel)", "compute/capacity gap"});
    std::vector<std::vector<double>> csv;
    for (const auto &p : series) {
        t.addRow({std::to_string(p.year),
                  formatDouble(p.relativeCores, 2),
                  formatDouble(p.relativeDramDensity, 2),
                  formatDouble(p.relativeChannelBw, 2),
                  formatDouble(p.relativeLatency, 2),
                  formatDouble(p.computeToCapacityGap, 2)});
        csv.push_back({static_cast<double>(p.year), p.relativeCores,
                       p.relativeDramDensity, p.relativeChannelBw,
                       p.relativeLatency, p.computeToCapacityGap});
    }
    t.setFootnote("\nPaper claim: the compute-to-capacity gap widens "
                  "every year; reproduced when the last column is "
                  "strictly increasing.");
    t.print(std::cout);
    csvBlock("fig01", {"year", "cores", "density", "channel_bw",
                       "latency", "gap"}, csv);
    return 0;
}
