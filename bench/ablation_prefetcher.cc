/**
 * @file
 * Ablation (paper Sec. VII): "an improved prefetching technique will
 * increase memory-level parallelism and will lower the blocking
 * factor."
 *
 * Characterizes one streaming (bwaves) and one irregular (OLTP)
 * workload with the stride prefetcher enabled and disabled. The
 * streaming workload's BF collapses with prefetching; the
 * pointer-heavy workload's barely moves — exactly the asymmetry the
 * paper uses to explain the class separation of Fig. 6.
 */

#include "characterize_common.hh"

using namespace memsense;
using namespace memsense::bench;

int
main(int argc, char **argv)
{
    benchInit(argc, argv);
    header("Ablation: prefetcher",
           "Blocking factor with the stride prefetcher on vs. off");

    measure::FreqScalingConfig cfg = sweepConfig(true);
    Table t({"Workload", "BF (prefetch on)", "BF (prefetch off)",
             "MPKI on", "MPKI off"});
    std::vector<std::vector<double>> csv;
    for (const char *id : {"bwaves", "column_store", "oltp"}) {
        cfg.prefetcherEnabled = true;
        auto on = measure::characterize(id, cfg);
        cfg.prefetcherEnabled = false;
        auto off = measure::characterize(id, cfg);
        t.addRow({workloads::workloadInfo(id).display,
                  formatDouble(on.model.params.bf, 3),
                  formatDouble(off.model.params.bf, 3),
                  formatDouble(on.model.params.mpki, 1),
                  formatDouble(off.model.params.mpki, 1)});
        csv.push_back({on.model.params.bf, off.model.params.bf,
                       on.model.params.mpki, off.model.params.mpki});
    }
    t.setFootnote("\nPaper claim: prefetching lowers BF where access "
                  "is regular (streaming bwaves) but cannot help "
                  "dependent pointer chasing (OLTP).");
    t.print(std::cout);
    csvBlock("ablation_prefetcher",
             {"bf_on", "bf_off", "mpki_on", "mpki_off"}, csv);
    return 0;
}
