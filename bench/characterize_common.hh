/**
 * @file
 * Shared driver for the characterization benches (Fig. 3, Tables
 * 2/4/5): frequency-scaling sweeps, Eq. 1 fits, and paper-vs-measured
 * parameter tables.
 */

#ifndef MEMSENSE_BENCH_CHARACTERIZE_COMMON_HH
#define MEMSENSE_BENCH_CHARACTERIZE_COMMON_HH

#include <string>
#include <vector>

#include "bench_common.hh"
#include "measure/freq_scaling.hh"
#include "workloads/factory.hh"

namespace memsense::bench
{

/** Sweep settings scaled by --fast. */
inline measure::FreqScalingConfig
sweepConfig(bool fast)
{
    measure::FreqScalingConfig cfg;
    if (fast) {
        cfg.coreGhz = {2.1, 2.7, 3.1};
        cfg.measure = nsToPicos(600'000.0);
        cfg.warmup = nsToPicos(4'000'000.0);
        cfg.adaptiveWarmup = false;
    } else {
        cfg.runsPerPoint = 2; // the paper's Table 3 took two per point
    }
    return cfg;
}

/** Sweep settings from the bench flags (--fast, --jobs N, and the
 *  fault-tolerance flags --max-retries / --job-timeout-ms /
 *  --checkpoint). */
inline measure::FreqScalingConfig
sweepConfig(int argc, char **argv)
{
    measure::FreqScalingConfig cfg = sweepConfig(fastMode(argc, argv));
    cfg.jobs = jobsArg(argc, argv);
    cfg.resilience = resilienceArgs(argc, argv);
    return cfg;
}

/**
 * Characterize a list of workloads on the parallel engine. With any
 * fault-tolerance flag set, grid-point failures are retried and
 * quarantined (reported via reportFailures under @p exp_id) instead
 * of aborting the sweep, and --checkpoint enables resume.
 */
inline std::vector<measure::Characterization>
characterizeIds(const std::vector<std::string> &ids,
                const measure::FreqScalingConfig &cfg,
                const std::string &exp_id = "characterize")
{
    measure::PhaseTimer phase("sweep");
    if (!cfg.resilience.enabled())
        return measure::characterizeMany(ids, cfg);
    measure::ResilientCharacterizations r =
        measure::characterizeManyResilient(ids, cfg);
    reportFailures(exp_id, r.manifest, r.totalJobs);
    return std::move(r.results);
}

/** Print the fitted-parameter table with the paper's values beside. */
inline void
printParamTable(const std::string &exp_id,
                const std::vector<measure::Characterization> &chars)
{
    Table t({"Workload", "CPI_cache", "BF", "MPKI", "WBR", "R^2",
             "paper CPI_cache", "paper BF", "paper MPKI", "paper WBR"});
    std::vector<std::vector<double>> csv;
    for (const auto &c : chars) {
        const auto &info = workloads::workloadInfo(c.workloadId);
        const auto &got = c.model.params;
        const auto &ref = info.paperTarget;
        t.addRow({info.display, formatDouble(got.cpiCache, 2),
                  formatDouble(got.bf, 2), formatDouble(got.mpki, 1),
                  formatPercent(got.wbr, 0), formatDouble(c.model.fit.r2, 2),
                  formatDouble(ref.cpiCache, 2), formatDouble(ref.bf, 2),
                  formatDouble(ref.mpki, 1), formatPercent(ref.wbr, 0)});
        csv.push_back({got.cpiCache, got.bf, got.mpki, got.wbr,
                       c.model.fit.r2, ref.cpiCache, ref.bf, ref.mpki,
                       ref.wbr});
    }
    t.print(std::cout);
    csvBlock(exp_id,
             {"cpi_cache", "bf", "mpki", "wbr", "r2", "paper_cpi_cache",
              "paper_bf", "paper_mpki", "paper_wbr"},
             csv);
}

/** Print the per-workload fit scatter (Fig. 3 style). */
inline void
printFitScatter(const std::string &exp_id,
                const std::vector<measure::Characterization> &chars)
{
    measure::PhaseTimer phase("report");
    for (const auto &c : chars) {
        const auto &info = workloads::workloadInfo(c.workloadId);
        std::cout << "\n-- " << info.display
                  << strformat(": CPI = %.3f + %.3f * (MPI*MP), "
                               "R^2 = %.3f --\n",
                               c.model.params.cpiCache, c.model.params.bf,
                               c.model.fit.r2);
        Table t({"core GHz", "DDR MT/s", "MPI*MP (cyc/inst)",
                 "CPI measured", "CPI fitted", "error"});
        std::vector<std::vector<double>> csv;
        for (const auto &o : c.observations) {
            double fitted = c.model.predictCpi(o.latencyPerInstruction());
            t.addRow({formatDouble(o.coreGhz, 1),
                      formatDouble(o.memMtPerSec, 0),
                      formatDouble(o.latencyPerInstruction(), 3),
                      formatDouble(o.cpiEff, 3), formatDouble(fitted, 3),
                      formatPercent(fitted / o.cpiEff - 1.0, 1)});
            csv.push_back({o.coreGhz, o.memMtPerSec,
                           o.latencyPerInstruction(), o.cpiEff, fitted});
        }
        t.print(std::cout);
        csvBlock(exp_id + "_" + c.workloadId,
                 {"ghz", "mt", "mpi_mp", "cpi_measured", "cpi_fitted"},
                 csv);
    }
}

} // namespace memsense::bench

#endif // MEMSENSE_BENCH_CHARACTERIZE_COMMON_HH
