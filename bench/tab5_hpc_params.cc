/**
 * @file
 * Table 5 reproduction: fitted workload parameters for the SPECfp HPC
 * proxies (run with three cores per socket, per paper Sec. V.N).
 *
 * The paper's per-row Table 5 values were not recoverable from the
 * available copy; the "paper" columns show values inferred from the
 * published Table 6 class mean. Paper claims reproduced: low blocking
 * factors (regular access, highly effective prefetching) combined
 * with MPKIs several times the other classes.
 */

#include "characterize_common.hh"

int
main(int argc, char **argv)
{
    using namespace memsense::bench;
    benchInit(argc, argv);
    header("Table 5", "Workload parameters for HPC "
                      "(fitted on the simulator vs. inferred targets)");
    auto chars = characterizeIds({"bwaves", "milc", "soplex", "wrf"},
                                 sweepConfig(argc, argv), "tab5");
    printParamTable("tab5", chars);
    return 0;
}
