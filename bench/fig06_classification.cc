/**
 * @file
 * Fig. 6 reproduction: bandwidth demand vs. latency sensitivity for
 * all twelve workloads, with per-class means (the red points of the
 * paper's figure) and the near-origin core-bound cluster.
 *
 * By default the scatter is built from parameters fitted on the
 * bundled simulator (the full pipeline); --paper uses the published
 * table values instead. Paper claims reproduced: the classes form
 * distinct clusters; enterprise is most latency sensitive, HPC most
 * bandwidth hungry, big data intermediate on both axes; Proximity
 * (and core-bound SPEC components) cluster near the origin and are
 * excluded from the means.
 */

#include <string>

#include "bench_common.hh"
#include "characterize_common.hh"
#include "model/classify.hh"
#include "model/paper_data.hh"

using namespace memsense;
using namespace memsense::bench;

int
main(int argc, char **argv)
{
    benchInit(argc, argv);
    bool use_paper = false;
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--paper")
            use_paper = true;

    header("Figure 6",
           std::string("Bandwidth demand vs. latency sensitivity (") +
               (use_paper ? "published table values"
                          : "parameters fitted on the simulator") +
               ")");

    std::vector<model::WorkloadParams> params;
    if (use_paper) {
        params = model::paper::allWorkloadParams();
    } else {
        std::vector<std::string> ids;
        for (const auto &info : workloads::workloadCatalog())
            ids.push_back(info.id);
        for (const auto &c :
             characterizeIds(ids, sweepConfig(argc, argv), "fig06"))
            params.push_back(c.model.params);
    }

    model::Classification cls = model::classify(params);

    Table t({"Workload", "class", "BF (x)", "refs/cycle (y)",
             "core bound"});
    std::vector<std::vector<double>> csv;
    for (const auto &pt : cls.points) {
        t.addRow({pt.name, model::className(pt.cls),
                  formatDouble(pt.bf, 3), formatDouble(pt.refsPerCycle, 4),
                  pt.coreBound ? "yes" : "no"});
        csv.push_back({pt.bf, pt.refsPerCycle,
                       pt.coreBound ? 1.0 : 0.0,
                       static_cast<double>(pt.cls)});
    }
    t.print(std::cout);
    csvBlock("fig06_points", {"bf", "refs_per_cycle", "core_bound",
                              "class"}, csv);

    std::cout << "\nClass means (Fig. 6 red points / Table 6 inputs):\n";
    Table means({"Class", "CPI_cache", "BF", "MPKI", "WBR",
                 "refs/cycle"});
    for (const auto &m : cls.means) {
        means.addRow({m.name, formatDouble(m.cpiCache, 2),
                      formatDouble(m.bf, 2), formatDouble(m.mpki, 1),
                      formatPercent(m.wbr, 0),
                      formatDouble(m.refsPerCycle(), 4)});
    }
    means.setFootnote(strformat(
        "\nk-means on the normalized scatter recovers the labeled "
        "classes for %.0f%% of non-core-bound workloads (paper: "
        "\"each workload class forms its own distinct cluster\").",
        cls.clusterAgreement * 100.0));
    means.print(std::cout);
    return 0;
}
