/**
 * @file
 * Table 6 reproduction: workload class parameters (means over the
 * non-core-bound members of each class).
 *
 * Printed for both the simulator-fitted parameters and the published
 * per-workload tables, next to the paper's published Table 6 row.
 * Paper claims reproduced: the ordering CPI_cache(ent) > CPI_cache
 * (bd) > CPI_cache(hpc), BF(ent) > BF(bd) > BF(hpc), and
 * MPKI(hpc) >> MPKI(bd) ~ MPKI(ent).
 */

#include "bench_common.hh"
#include "characterize_common.hh"
#include "model/classify.hh"
#include "model/paper_data.hh"

using namespace memsense;
using namespace memsense::bench;

namespace
{

void
printMeans(const std::string &title,
           const std::vector<model::WorkloadParams> &params)
{
    model::Classification cls = model::classify(params);
    std::cout << "\n-- " << title << " --\n";
    Table t({"Workload Class", "CPI_cache", "BF", "MPKI", "WBR",
             "paper CPI_cache", "paper BF", "paper MPKI"});
    std::vector<std::vector<double>> csv;
    for (const auto &m : cls.means) {
        model::WorkloadParams ref = model::paper::classParams(m.cls);
        t.addRow({m.name, formatDouble(m.cpiCache, 2),
                  formatDouble(m.bf, 2), formatDouble(m.mpki, 1),
                  formatPercent(m.wbr, 0), formatDouble(ref.cpiCache, 2),
                  formatDouble(ref.bf, 2), formatDouble(ref.mpki, 1)});
        csv.push_back({m.cpiCache, m.bf, m.mpki, m.wbr, ref.cpiCache,
                       ref.bf, ref.mpki});
    }
    t.print(std::cout);
    csvBlock("tab6_" + title,
             {"cpi_cache", "bf", "mpki", "wbr", "paper_cpi_cache",
              "paper_bf", "paper_mpki"},
             csv);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    benchInit(argc, argv);
    header("Table 6", "Workload class parameters (core-bound members "
                      "excluded from the means, per the paper)");

    printMeans("published_workload_tables",
               model::paper::allWorkloadParams());

    std::vector<std::string> ids;
    for (const auto &info : workloads::workloadCatalog())
        ids.push_back(info.id);
    std::vector<model::WorkloadParams> fitted;
    for (const auto &c :
         characterizeIds(ids, sweepConfig(argc, argv), "tab6"))
        fitted.push_back(c.model.params);
    printMeans("fitted_on_simulator", fitted);
    return 0;
}
