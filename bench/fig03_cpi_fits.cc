/**
 * @file
 * Fig. 3 reproduction: CPI vs. total latency-per-instruction scatter
 * and linear fits for the big data workloads.
 *
 * Methodology (paper Sec. V.A): run each workload at several core
 * frequencies and two memory speeds, measure (CPI_eff, MPI, MP) with
 * the simulator's counters, and fit CPI = CPI_cache + BF * (MPI*MP).
 * Paper claims reproduced: high-R^2 linear fits for structured data
 * / NITS / Spark (paper reports R^2 = 0.95 for structured data) and
 * a near-zero slope, poor-R^2 fit for the core-bound Proximity
 * workload ("not of concern", Sec. V.E).
 */

#include "characterize_common.hh"

int
main(int argc, char **argv)
{
    using namespace memsense::bench;
    benchInit(argc, argv);
    header("Figure 3",
           "CPI vs. MPI*MP with Eq. 1 linear fits, big data workloads "
           "(frequency-scaling grid: core {2.1,2.4,2.7,3.1} GHz x DDR3 "
           "{1333,1867})");
    auto chars = characterizeIds(
        {"column_store", "nits", "proximity", "spark"},
        sweepConfig(argc, argv), "fig03");
    printFitScatter("fig03", chars);
    return 0;
}
