/**
 * @file
 * Shared helpers for the paper-reproduction bench harnesses.
 *
 * Every binary in bench/ regenerates one of the paper's tables or
 * figures: it prints the same rows/series the paper reports, plus a
 * CSV block (between BEGIN/END markers) for replotting. Absolute
 * values come from the bundled simulator, not the authors' Xeons; the
 * shapes are the reproduction target (see EXPERIMENTS.md).
 */

#ifndef MEMSENSE_BENCH_BENCH_COMMON_HH
#define MEMSENSE_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "measure/metrics.hh"
#include "measure/resilience.hh"
#include "util/csv.hh"
#include "util/error.hh"
#include "util/fault_injection.hh"
#include "util/log.hh"
#include "util/string_util.hh"
#include "util/table.hh"
#include "util/trace.hh"

namespace memsense::bench
{

/**
 * Atomically replace @p path with @p content: write `<path>.tmp` in
 * the same directory, flush, then rename over the target. A crash (or
 * injected fault) mid-write leaves either the old file or no file —
 * never a torn one — so downstream extractors can trust whatever they
 * find on disk.
 */
inline void
atomicWriteFile(const std::string &path, const std::string &content)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        requireConfig(out.good(), "cannot open " + tmp + " for writing");
        out << content;
        out.flush();
        requireConfig(out.good(), "short write to " + tmp);
    }
    requireConfig(std::rename(tmp.c_str(), path.c_str()) == 0,
                  "cannot rename " + tmp + " over " + path);
}

/**
 * The --out-dir destination for CSV/JSON artifacts ("" = stdout only).
 * One slot per process, set once by benchInit().
 */
inline std::string &
outDir()
{
    // memsense-lint: allow(mutable-global-state): process-wide output
    // destination, written once during argv parsing in benchInit()
    // before any worker thread exists.
    static std::string dir;
    return dir;
}

/**
 * The experiment id naming this process's observability artifacts
 * (basename of argv[0], e.g. "fig03_cpi_fits"). Set by benchInit().
 */
inline std::string &
experimentId()
{
    // memsense-lint: allow(mutable-global-state): process-wide
    // experiment name, written once during argv parsing in benchInit()
    // before any worker thread exists.
    static std::string id = "bench";
    return id;
}

/**
 * Flush observability artifacts: with --metrics, write
 * `<out-dir>/<exp>.metrics.json` (schema memsense.metrics.v1); with
 * --trace PATH, finalize the Chrome trace file. Registered via
 * std::atexit by benchInit() so every exit path of every driver
 * flushes; safe to also call explicitly (flushing twice just rewrites
 * the same snapshot).
 */
inline void
flushObservability()
{
    try {
        if (trace::statsEnabled()) {
            const std::string dir =
                outDir().empty() ? std::string(".") : outDir();
            measure::MetricsRegistry::instance().flushToFile(
                dir + "/" + experimentId() + ".metrics.json",
                experimentId());
        }
        trace::stopTracing();
    } catch (const std::exception &e) {
        // atexit context: report, never propagate (that would terminate
        // with the real artifacts already on disk).
        std::fprintf(stderr, "observability flush failed: %s\n",
                     e.what());
    }
}

/** Print the standard header for a reproduction binary. */
inline void
header(const std::string &exp_id, const std::string &what)
{
    std::cout << "=== memsense reproduction: " << exp_id << " ===\n"
              << what << "\n\n";
}

/**
 * Print a CSV block delimited for machine extraction; with --out-dir
 * the same CSV is also written atomically to `<dir>/<name>.csv`.
 */
inline void
csvBlock(const std::string &name,
         const std::vector<std::string> &columns,
         const std::vector<std::vector<double>> &rows)
{
    std::ostringstream csv;
    CsvWriter w(csv);
    w.writeRow(columns);
    for (const auto &r : rows)
        w.writeRow(r);

    std::cout << "--- BEGIN CSV " << name << " ---\n"
              << csv.str() << "--- END CSV " << name << " ---\n";
    if (!outDir().empty())
        atomicWriteFile(outDir() + "/" + name + ".csv", csv.str());
}

/** Shorten noisy logging for bench runs unless asked otherwise. */
inline void
quietLogs(int argc, char **argv)
{
    setLogLevel(LogLevel::Info);
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--quiet")
            setLogLevel(LogLevel::Warn);
        if (std::string(argv[i]) == "--debug")
            setLogLevel(LogLevel::Debug);
    }
}

/** True when the user passed --fast (smaller simulation windows). */
inline bool
fastMode(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--fast")
            return true;
    return false;
}

/**
 * Worker count from --jobs N / --jobs=N.
 *
 * Default 1 (the serial reference path); 0 means one worker per
 * hardware thread. Sweep results are identical for any value — the
 * engine collects results in input order (measure/parallel.hh).
 */
inline int
jobsArg(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--jobs" && i + 1 < argc)
            return std::atoi(argv[i + 1]);
        if (arg.rfind("--jobs=", 0) == 0)
            return std::atoi(arg.c_str() + 7);
    }
    return 1;
}

/** One `--flag VALUE` / `--flag=VALUE` string argument, or "". */
inline std::string
stringArg(int argc, char **argv, const std::string &flag)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == flag && i + 1 < argc)
            return argv[i + 1];
        if (arg.rfind(flag + "=", 0) == 0)
            return arg.substr(flag.size() + 1);
    }
    return "";
}

/**
 * Fault-tolerance settings from the standard bench flags:
 *
 *   --max-retries N     retry each failing job up to N extra times
 *   --job-timeout-ms N  per-job wall-clock budget across retries
 *   --checkpoint PATH   append-only journal; rerun with the same PATH
 *                       (and the same sweep settings) to resume
 *
 * All default off: resilienceArgs(...).enabled() is false when none
 * of the flags were passed, and the drivers then keep the strict
 * first-error-aborts behavior.
 */
inline measure::ResilienceConfig
resilienceArgs(int argc, char **argv)
{
    measure::ResilienceConfig rc;
    const std::string retries = stringArg(argc, argv, "--max-retries");
    if (!retries.empty())
        rc.maxRetries = std::atoi(retries.c_str());
    const std::string timeout = stringArg(argc, argv, "--job-timeout-ms");
    if (!timeout.empty())
        rc.jobTimeoutMs = std::atof(timeout.c_str());
    rc.checkpointPath = stringArg(argc, argv, "--checkpoint");
    return rc;
}

/**
 * Standard bench start-up: logging flags, --out-dir, MEMSENSE_FAULTS
 * (the deterministic fault-injection harness, util/fault_injection.hh),
 * and the observability switches (docs/observability.md):
 *
 *   --trace PATH  record a Chrome trace_event JSON of every sweep
 *                 span to PATH (open in chrome://tracing or Perfetto)
 *   --metrics     write `<out-dir>/<exp>.metrics.json` with counters,
 *                 gauges, span stats, and value distributions
 */
inline void
benchInit(int argc, char **argv)
{
    quietLogs(argc, argv);
    outDir() = stringArg(argc, argv, "--out-dir");
    if (argc > 0 && argv[0] && argv[0][0]) {
        std::string exe = argv[0];
        std::size_t slash = exe.find_last_of('/');
        experimentId() =
            slash == std::string::npos ? exe : exe.substr(slash + 1);
    }
    bool observing = false;
    const std::string trace_path = stringArg(argc, argv, "--trace");
    if (!trace_path.empty()) {
        trace::startTracing(trace_path);
        observing = true;
    }
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--metrics") {
            trace::setStatsEnabled(true);
            observing = true;
        }
    }
    if (observing)
        std::atexit(flushObservability);
    fault::configureFromEnv();
}

/**
 * Report a sweep's failure manifest: a WARN summary plus a delimited
 * JSON block, and with --out-dir an atomic `<dir>/<exp_id>.failures.json`
 * for machine consumption. No output at all for a clean sweep.
 */
inline void
reportFailures(const std::string &exp_id,
               const measure::FailureManifest &manifest,
               std::size_t total_jobs)
{
    if (manifest.empty())
        return;
    warn(exp_id + ": " + manifest.summary(total_jobs));
    const std::string json = manifest.toJson();
    std::cout << "--- BEGIN FAILURES " << exp_id << " ---\n"
              << json << "\n--- END FAILURES " << exp_id << " ---\n";
    if (!outDir().empty())
        atomicWriteFile(outDir() + "/" + exp_id + ".failures.json",
                        json + "\n");
}

} // namespace memsense::bench

#endif // MEMSENSE_BENCH_BENCH_COMMON_HH
