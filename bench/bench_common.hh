/**
 * @file
 * Shared helpers for the paper-reproduction bench harnesses.
 *
 * Every binary in bench/ regenerates one of the paper's tables or
 * figures: it prints the same rows/series the paper reports, plus a
 * CSV block (between BEGIN/END markers) for replotting. Absolute
 * values come from the bundled simulator, not the authors' Xeons; the
 * shapes are the reproduction target (see EXPERIMENTS.md).
 */

#ifndef MEMSENSE_BENCH_BENCH_COMMON_HH
#define MEMSENSE_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "util/csv.hh"
#include "util/log.hh"
#include "util/string_util.hh"
#include "util/table.hh"

namespace memsense::bench
{

/** Print the standard header for a reproduction binary. */
inline void
header(const std::string &exp_id, const std::string &what)
{
    std::cout << "=== memsense reproduction: " << exp_id << " ===\n"
              << what << "\n\n";
}

/** Print a CSV block delimited for machine extraction. */
inline void
csvBlock(const std::string &name,
         const std::vector<std::string> &columns,
         const std::vector<std::vector<double>> &rows)
{
    std::cout << "--- BEGIN CSV " << name << " ---\n";
    CsvWriter w(std::cout);
    w.writeRow(columns);
    for (const auto &r : rows)
        w.writeRow(r);
    std::cout << "--- END CSV " << name << " ---\n";
}

/** Shorten noisy logging for bench runs unless asked otherwise. */
inline void
quietLogs(int argc, char **argv)
{
    setLogLevel(LogLevel::Info);
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--quiet")
            setLogLevel(LogLevel::Warn);
        if (std::string(argv[i]) == "--debug")
            setLogLevel(LogLevel::Debug);
    }
}

/** True when the user passed --fast (smaller simulation windows). */
inline bool
fastMode(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--fast")
            return true;
    return false;
}

/**
 * Worker count from --jobs N / --jobs=N.
 *
 * Default 1 (the serial reference path); 0 means one worker per
 * hardware thread. Sweep results are identical for any value — the
 * engine collects results in input order (measure/parallel.hh).
 */
inline int
jobsArg(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--jobs" && i + 1 < argc)
            return std::atoi(argv[i + 1]);
        if (arg.rfind("--jobs=", 0) == 0)
            return std::atoi(arg.c_str() + 7);
    }
    return 1;
}

} // namespace memsense::bench

#endif // MEMSENSE_BENCH_BENCH_COMMON_HH
