/**
 * @file
 * Ablation: how much does the queuing-curve choice matter?
 *
 * Compares the class sensitivities (Figs 10/11 headline numbers and
 * the Table 7 equivalences) under three queuing models: no queuing
 * at all (compulsory latency only), the analytic default, and a
 * deliberately steep curve. The latency-sensitivity slopes are robust
 * (they are dominated by BF * MPKI); the bandwidth equivalences are
 * not — they exist only because queuing delay gives bandwidth a
 * latency lever, which is why the paper measures Fig. 7 instead of
 * assuming a curve.
 */

#include <cmath>

#include "bench_common.hh"
#include "model/equivalence.hh"
#include "model/paper_data.hh"
#include "model/sensitivity.hh"

using namespace memsense;
using namespace memsense::bench;

namespace
{

struct Variant
{
    std::string name;
    model::QueuingModel queuing;
};

} // anonymous namespace

int
main(int argc, char **argv)
{
    benchInit(argc, argv);
    header("Ablation: queuing model",
           "Class sensitivities under different queuing-delay curves");

    std::vector<Variant> variants;
    variants.push_back(
        {"no queuing", model::QueuingModel::analyticDefault(1e-6, 1e-6)});
    variants.push_back(
        {"default (linear+M/D/1)", model::QueuingModel::analyticDefault()});
    variants.push_back(
        {"steep (2x)", model::QueuingModel::analyticDefault(160.0, 14.0)});

    model::Platform base = model::Platform::paperBaseline();
    Table t({"queuing curve", "class", "+10ns CPI impact",
             "BW equiv of 10 ns", "baseline CPI"});
    std::vector<std::vector<double>> csv;
    for (const auto &v : variants) {
        model::Solver solver(v.queuing);
        model::SensitivityAnalyzer an(solver, base);
        model::EquivalenceAnalyzer eq(solver, base);
        for (const auto &p : model::paper::classParams()) {
            auto sweep = an.latencySweep(p, 10.0, 10.0);
            double d10 = sweep.back().cpiIncreaseFrac * 100.0;
            double equiv = eq.bandwidthEquivalentOfLatency(p);
            t.addRow({v.name, p.name, formatPercent(d10 / 100.0, 2),
                      std::isinf(equiv) ? "none"
                                        : formatDouble(equiv, 1),
                      formatDouble(an.baselinePoint(p).cpiEff, 3)});
            csv.push_back({d10, std::isinf(equiv) ? -1.0 : equiv,
                           an.baselinePoint(p).cpiEff});
        }
    }
    t.setFootnote("\nTakeaway: the latency slopes (Fig. 11) barely "
                  "move; the bandwidth-latency equivalence (Table 7) "
                  "hinges on the measured queuing curve.");
    t.print(std::cout);
    csvBlock("ablation_queuing",
             {"d10_pct", "bw_equiv_gbps", "baseline_cpi"}, csv);
    return 0;
}
