/**
 * @file
 * Shared driver for the Figs 2/4/5 time-series characterization
 * benches: runs each workload of one class on the simulator, samples
 * counters at a fixed interval, and prints the utilization / CPI /
 * bandwidth series the paper plots.
 */

#ifndef MEMSENSE_BENCH_TIMESERIES_COMMON_HH
#define MEMSENSE_BENCH_TIMESERIES_COMMON_HH

#include <string>
#include <vector>

#include "bench_common.hh"
#include "measure/timeseries.hh"
#include "workloads/factory.hh"

namespace memsense::bench
{

/**
 * Run and print the time series of the given workloads. Series run
 * concurrently on @p jobs workers (each serially sampled on its own
 * machine) and print in input order. With any fault-tolerance flag
 * set (@p resilience enabled), failed captures are retried and then
 * quarantined — the surviving series still print, and the failures
 * are reported via reportFailures().
 */
inline void
runTimeSeries(const std::string &exp_id,
              const std::vector<std::string> &ids, bool fast,
              int jobs = 1,
              const measure::ResilienceConfig &resilience = {})
{
    std::vector<measure::TimeSeriesConfig> cfgs;
    cfgs.reserve(ids.size());
    for (const auto &id : ids) {
        const auto &info = workloads::workloadInfo(id);
        measure::TimeSeriesConfig cfg;
        cfg.run.workloadId = id;
        cfg.run.cores = info.characterizationCores;
        cfg.run.warmup = nsToPicos(fast ? 1'000'000.0 : 4'000'000.0);
        cfg.run.adaptiveWarmup = !fast;
        cfg.interval = nsToPicos(100'000.0); // "100 ms" scaled down
        cfg.samples = fast ? 20 : 40;
        cfgs.push_back(cfg);
    }

    std::vector<measure::TimeSeries> series;
    measure::PhaseTimer phase("sweep");
    if (resilience.enabled()) {
        measure::ResilientTimeSeriesBatch batch =
            measure::captureTimeSeriesBatchResilient(cfgs, jobs,
                                                     resilience);
        reportFailures(exp_id, batch.manifest, batch.totalJobs);
        series = std::move(batch.results);
    } else {
        series = measure::captureTimeSeriesBatch(cfgs, jobs);
    }

    // Index by the series' own workload id: with quarantined captures
    // the surviving list can be shorter than ids.
    for (std::size_t w = 0; w < series.size(); ++w) {
        const measure::TimeSeries &ts = series[w];
        const auto &info = workloads::workloadInfo(ts.workloadId);

        std::cout << "\n-- " << info.display << " ("
                  << info.characterizationCores << " cores) --\n";
        Table t({"t (ms)", "CPU util", "CPI", "DRAM BW (GB/s)",
                 "I/O (GB/s)", "MPKI", "MP (ns)"});
        std::vector<std::vector<double>> csv;
        for (const auto &s : ts.samples) {
            t.addRow({formatDouble(s.timeMs, 2),
                      formatPercent(s.cpuUtilization, 0),
                      formatDouble(s.cpi, 2),
                      formatDouble(s.bandwidthGBps, 2),
                      formatDouble(s.ioGBps, 2),
                      formatDouble(s.mpki, 1),
                      formatDouble(s.missPenaltyNs, 1)});
            csv.push_back({s.timeMs, s.cpuUtilization, s.cpi,
                           s.bandwidthGBps, s.ioGBps, s.mpki,
                           s.missPenaltyNs});
        }
        t.setFootnote(strformat(
            "means: util %.0f%%, CPI %.2f (cv %.2f), BW %.2f GB/s",
            ts.meanCpuUtilization() * 100.0, ts.meanCpi(), ts.cpiCv(),
            ts.meanBandwidthGBps()));
        t.print(std::cout);
        csvBlock(exp_id + "_" + ts.workloadId,
                 {"t_ms", "cpu_util", "cpi", "bw_gbps", "io_gbps",
                  "mpki", "mp_ns"},
                 csv);
    }
}

} // namespace memsense::bench

#endif // MEMSENSE_BENCH_TIMESERIES_COMMON_HH
