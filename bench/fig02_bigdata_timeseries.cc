/**
 * @file
 * Fig. 2 reproduction: measured CPU utilization, CPI, and memory
 * bandwidth vs. time for the four big data workloads.
 *
 * Paper claims reproduced: structured data runs near 100% utilization
 * with a narrow CPI band and heavy memory traffic; NITS adds a >2 GB/s
 * I/O stream; proximity is core-bound with an order of magnitude less
 * memory traffic; Spark runs at ~70% utilization with visibly variable
 * CPI.
 */

#include "timeseries_common.hh"

int
main(int argc, char **argv)
{
    using namespace memsense::bench;
    benchInit(argc, argv);
    header("Figure 2",
           "CPU utilization / CPI / memory bandwidth vs. time, big "
           "data workloads (100 us virtual sampling interval)");
    runTimeSeries("fig02",
                  {"column_store", "nits", "proximity", "spark"},
                  fastMode(argc, argv), jobsArg(argc, argv),
                  resilienceArgs(argc, argv));
    return 0;
}
