/**
 * @file
 * Fig. 10 reproduction: CPI increase vs. compulsory memory latency
 * (10 ns steps from the 75 ns baseline) for the three classes.
 *
 * Paper claims reproduced: enterprise shows the most latency
 * sensitivity, big data follows, and HPC shows none at all — it is
 * bandwidth bound at every latency point modeled ("it is possible
 * that increased latency can eventually make a bandwidth-bound
 * workload become memory bound, but this does not occur in our
 * example").
 */

#include "model_common.hh"
#include "model/sensitivity.hh"

using namespace memsense;
using namespace memsense::bench;

int
main(int argc, char **argv)
{
    benchInit(argc, argv);
    header("Figure 10",
           "CPI increase vs. compulsory latency (+10 ns steps), by "
           "class");

    model::Platform base = model::Platform::paperBaseline();
    model::SensitivityAnalyzer an(makeSolver(argc, argv), base);

    for (const auto &p : classMixes()) {
        auto sweep = an.latencySweep(p, 60.0, 10.0);
        std::cout << "\n-- " << p.name << " --\n";
        Table t({"compulsory (ns)", "loaded MP (ns)", "CPI",
                 "CPI increase", "BW bound"});
        std::vector<std::vector<double>> csv;
        for (const auto &pt : sweep) {
            t.addRow({formatDouble(pt.compulsoryNs, 0),
                      formatDouble(pt.op.missPenaltyNs, 1),
                      formatDouble(pt.op.cpiEff, 3),
                      formatPercent(pt.cpiIncreaseFrac, 1),
                      pt.op.bandwidthBound ? "yes" : "no"});
            csv.push_back({pt.compulsoryNs, pt.op.missPenaltyNs,
                           pt.op.cpiEff, pt.cpiIncreaseFrac,
                           pt.op.bandwidthBound ? 1.0 : 0.0});
        }
        t.print(std::cout);
        csvBlock("fig10_" + p.name,
                 {"compulsory_ns", "mp_ns", "cpi", "cpi_increase",
                  "bw_bound"},
                 csv);
    }
    return 0;
}
