/**
 * @file
 * Table 2 reproduction: fitted workload parameters for big data —
 * CPI_cache, blocking factor, MPKI, and writeback rate, printed next
 * to the paper's published values.
 *
 * Paper claims reproduced: Spark carries the largest big data BF
 * (most latency sensitive); Proximity is core-bound (BF ~ 0, MPKI an
 * order of magnitude lower); NITS's WBR exceeds 100% because of its
 * non-temporal result writes.
 */

#include "characterize_common.hh"

int
main(int argc, char **argv)
{
    using namespace memsense::bench;
    benchInit(argc, argv);
    header("Table 2", "Workload parameters for big data "
                      "(fitted on the simulator vs. published)");
    auto chars = characterizeIds(
        {"column_store", "nits", "proximity", "spark"},
        sweepConfig(argc, argv), "tab2");
    printParamTable("tab2", chars);
    return 0;
}
