/**
 * @file
 * Fig. 4 reproduction: measured CPU utilization, CPI, and memory
 * bandwidth vs. time for the four enterprise workloads.
 *
 * Paper claims reproduced: steady-state behavior across OLTP / JVM /
 * virtualization / web caching; web caching runs at reduced CPU
 * utilization (half the virtual processors held for packet
 * processing); enterprise CPIs sit well above the big data class.
 */

#include "timeseries_common.hh"

int
main(int argc, char **argv)
{
    using namespace memsense::bench;
    benchInit(argc, argv);
    header("Figure 4",
           "CPU utilization / CPI / memory bandwidth vs. time, "
           "enterprise workloads (100 us virtual sampling interval)");
    runTimeSeries("fig04",
                  {"oltp", "jvm", "virtualization", "web_caching"},
                  fastMode(argc, argv), jobsArg(argc, argv),
                  resilienceArgs(argc, argv));
    return 0;
}
