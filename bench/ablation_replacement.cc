/**
 * @file
 * Ablation: LLC replacement policy.
 *
 * The model's inputs (MPKI, and through it bandwidth demand) depend on
 * how well the LLC holds each workload's reuse set. This ablation
 * re-measures two reuse-heavy workloads (column store: hot dictionary;
 * web caching: hot buckets) and one streaming workload under LRU,
 * random, and SRRIP replacement, quantifying how much of the paper's
 * Table 2/4 signature is owed to sane replacement.
 */

#include "characterize_common.hh"
#include "measure/parallel.hh"

using namespace memsense;
using namespace memsense::bench;

namespace
{

const char *
policyName(sim::ReplacementKind k)
{
    switch (k) {
      case sim::ReplacementKind::Lru:
        return "LRU";
      case sim::ReplacementKind::Random:
        return "random";
      case sim::ReplacementKind::Srrip:
        return "SRRIP";
    }
    return "?";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    benchInit(argc, argv);
    header("Ablation: LLC replacement",
           "Fitted MPKI / BF under LRU vs. random vs. SRRIP "
           "replacement");

    // Always the fast sweep windows (this ablation needs relative MPKI
    // movement, not paper-grade absolutes), but honor --jobs.
    measure::FreqScalingConfig cfg = sweepConfig(true);
    cfg.jobs = jobsArg(argc, argv);
    cfg.coreGhz = {2.1, 3.1};

    const std::vector<const char *> ids = {"column_store", "web_caching",
                                           "bwaves"};
    const std::vector<sim::ReplacementKind> policies = {
        sim::ReplacementKind::Lru, sim::ReplacementKind::Random,
        sim::ReplacementKind::Srrip};

    // Flatten the full (workload, policy, ghz, MT/s) grid into one job
    // list so the executor keeps every worker busy across cells; the
    // ordered results slice back per (workload, policy) cell below.
    // characterize() builds RunConfigs internally, so rebuild them here
    // with the replacement policy threaded through.
    std::vector<measure::RunConfig> grid;
    for (const char *id : ids) {
        const auto &info = workloads::workloadInfo(id);
        for (auto policy : policies) {
            for (double ghz : cfg.coreGhz) {
                for (double mt : cfg.memMtPerSec) {
                    measure::RunConfig rc;
                    rc.workloadId = id;
                    rc.cores = info.characterizationCores;
                    rc.ghz = ghz;
                    rc.memMtPerSec = mt;
                    rc.warmup = cfg.warmup;
                    rc.measure = cfg.measure;
                    rc.adaptiveWarmup = cfg.adaptiveWarmup;
                    rc.llcReplacement = policy;
                    grid.push_back(rc);
                }
            }
        }
    }

    measure::ParallelExecutor exec(cfg.jobs);
    std::vector<model::FitObservation> observations;
    {
        measure::PhaseTimer phase("sweep");
        observations = exec.mapOrdered(grid, measure::runObservation);
    }

    const std::size_t per_cell =
        cfg.coreGhz.size() * cfg.memMtPerSec.size();
    Table t({"workload", "policy", "MPKI", "BF", "WBR"});
    std::vector<std::vector<double>> csv;
    std::size_t cell = 0;
    for (const char *id : ids) {
        const auto &info = workloads::workloadInfo(id);
        for (auto policy : policies) {
            measure::Characterization c;
            c.workloadId = id;
            auto first = observations.begin() +
                         static_cast<std::ptrdiff_t>(cell * per_cell);
            c.observations.assign(
                first, first + static_cast<std::ptrdiff_t>(per_cell));
            ++cell;
            c.model =
                model::fitModel(info.display, info.cls, c.observations);
            t.addRow({info.display, policyName(policy),
                      formatDouble(c.model.params.mpki, 2),
                      formatDouble(c.model.params.bf, 3),
                      formatPercent(c.model.params.wbr, 0)});
            csv.push_back({static_cast<double>(policy),
                           c.model.params.mpki, c.model.params.bf,
                           c.model.params.wbr});
        }
    }
    t.setFootnote("\nFinding: with the paper-sized LLC (2.5 MB/core) "
                  "the hot reuse sets fit with headroom, so the "
                  "policy moves MPKI by only ~1-2% even for the "
                  "reuse-heavy workloads and not at all for the "
                  "streaming kernel — the Table 2/4 signatures are "
                  "robust to the replacement policy, which is why "
                  "the paper never needed to specify it.");
    t.print(std::cout);
    csvBlock("ablation_replacement", {"policy", "mpki", "bf", "wbr"},
             csv);
    return 0;
}
