/**
 * @file
 * Ablation: LLC replacement policy.
 *
 * The model's inputs (MPKI, and through it bandwidth demand) depend on
 * how well the LLC holds each workload's reuse set. This ablation
 * re-measures two reuse-heavy workloads (column store: hot dictionary;
 * web caching: hot buckets) and one streaming workload under LRU,
 * random, and SRRIP replacement, quantifying how much of the paper's
 * Table 2/4 signature is owed to sane replacement.
 */

#include "characterize_common.hh"

using namespace memsense;
using namespace memsense::bench;

namespace
{

const char *
policyName(sim::ReplacementKind k)
{
    switch (k) {
      case sim::ReplacementKind::Lru:
        return "LRU";
      case sim::ReplacementKind::Random:
        return "random";
      case sim::ReplacementKind::Srrip:
        return "SRRIP";
    }
    return "?";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    quietLogs(argc, argv);
    header("Ablation: LLC replacement",
           "Fitted MPKI / BF under LRU vs. random vs. SRRIP "
           "replacement");

    measure::FreqScalingConfig base = sweepConfig(true);
    Table t({"workload", "policy", "MPKI", "BF", "WBR"});
    std::vector<std::vector<double>> csv;
    for (const char *id : {"column_store", "web_caching", "bwaves"}) {
        for (auto policy :
             {sim::ReplacementKind::Lru, sim::ReplacementKind::Random,
              sim::ReplacementKind::Srrip}) {
            // Thread the policy through a run-level copy.
            measure::FreqScalingConfig cfg = base;
            cfg.coreGhz = {2.1, 3.1};
            measure::Characterization c;
            {
                // characterize() uses RunConfig internally; rebuild the
                // observations with the policy applied.
                const auto &info = workloads::workloadInfo(id);
                for (double ghz : cfg.coreGhz) {
                    for (double mt : cfg.memMtPerSec) {
                        measure::RunConfig rc;
                        rc.workloadId = id;
                        rc.cores = info.characterizationCores;
                        rc.ghz = ghz;
                        rc.memMtPerSec = mt;
                        rc.warmup = cfg.warmup;
                        rc.measure = cfg.measure;
                        rc.adaptiveWarmup = cfg.adaptiveWarmup;
                        rc.llcReplacement = policy;
                        c.observations.push_back(
                            measure::runObservation(rc));
                    }
                }
                c.workloadId = id;
                c.model = model::fitModel(info.display, info.cls,
                                          c.observations);
            }
            t.addRow({workloads::workloadInfo(id).display,
                      policyName(policy),
                      formatDouble(c.model.params.mpki, 2),
                      formatDouble(c.model.params.bf, 3),
                      formatPercent(c.model.params.wbr, 0)});
            csv.push_back({static_cast<double>(policy),
                           c.model.params.mpki, c.model.params.bf,
                           c.model.params.wbr});
        }
    }
    t.setFootnote("\nFinding: with the paper-sized LLC (2.5 MB/core) "
                  "the hot reuse sets fit with headroom, so the "
                  "policy moves MPKI by only ~1-2% even for the "
                  "reuse-heavy workloads and not at all for the "
                  "streaming kernel — the Table 2/4 signatures are "
                  "robust to the replacement policy, which is why "
                  "the paper never needed to specify it.");
    t.print(std::cout);
    csvBlock("ablation_replacement", {"policy", "mpki", "bf", "wbr"},
             csv);
    return 0;
}
