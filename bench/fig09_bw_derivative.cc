/**
 * @file
 * Fig. 9 reproduction: the derivative of Fig. 8 — performance impact
 * (% CPI change per GB/s/core) vs. the available bandwidth per core.
 *
 * Paper claims reproduced: "it is not possible to compute a simple
 * constant rule of thumb" — the impact of losing a GB/s grows sharply
 * as the starting bandwidth shrinks, and HPC's impact dwarfs the
 * other classes at every starting point.
 */

#include "model_common.hh"
#include "model/sensitivity.hh"

using namespace memsense;
using namespace memsense::bench;

int
main(int argc, char **argv)
{
    benchInit(argc, argv);
    header("Figure 9",
           "Performance impact per GB/s/core vs. available bandwidth "
           "per core (derivative of Fig. 8)");

    model::Platform base = model::Platform::paperBaseline();
    model::SensitivityAnalyzer an(makeSolver(argc, argv), base);
    auto variants =
        model::SensitivityAnalyzer::standardBandwidthVariants(base.memory);

    for (const auto &p : classMixes()) {
        auto sweep = an.bandwidthSweep(p, variants);
        auto deriv = model::SensitivityAnalyzer::bandwidthDerivative(sweep);
        std::cout << "\n-- " << p.name << " --\n";
        Table t({"available GB/s per core", "% CPI per GB/s/core"});
        std::vector<std::vector<double>> csv;
        for (const auto &d : deriv) {
            t.addRow({formatDouble(d.x, 2), formatDouble(d.dCpiPct, 2)});
            csv.push_back({d.x, d.dCpiPct});
        }
        t.print(std::cout);
        csvBlock("fig09_" + p.name, {"bw_per_core", "pct_per_gbps"},
                 csv);
    }
    return 0;
}
