/**
 * @file
 * Workload calibration diagnostic.
 *
 * Characterizes every catalog workload on the simulator and prints the
 * fitted model parameters next to the paper's published (or inferred)
 * targets. Not a paper table itself — this is the maintenance tool
 * used to keep the synthetic generators aligned with the counter
 * signatures the paper reports.
 *
 * Usage: calibrate_workloads [workload_id ...]
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "measure/freq_scaling.hh"
#include "util/log.hh"
#include "util/string_util.hh"
#include "util/table.hh"

using namespace memsense;

namespace
{

void
printRow(Table &t, const measure::Characterization &c)
{
    const auto &info = workloads::workloadInfo(c.workloadId);
    const auto &target = info.paperTarget;
    const auto &got = c.model.params;

    // CPU utilization and mean CPI come from the mid-grid observation.
    t.addRow({info.display,
              strformat("%.2f/%.2f", got.cpiCache, target.cpiCache),
              strformat("%.3f/%.3f", got.bf, target.bf),
              strformat("%.1f/%.1f", got.mpki, target.mpki),
              strformat("%.0f%%/%.0f%%", got.wbr * 100.0,
                        target.wbr * 100.0),
              strformat("%.3f", c.model.fit.r2)});
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::benchInit(argc, argv);
    setLogLevel(LogLevel::Warn); // diagnostic tool: quiet by default
    measure::FreqScalingConfig cfg;

    Table t({"workload", "CPI_cache (got/target)", "BF (got/target)",
             "MPKI (got/target)", "WBR (got/target)", "R^2"});
    t.setTitle("Workload calibration: fitted vs. paper targets");

    std::vector<std::string> ids;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--jobs" && i + 1 < argc) {
            cfg.jobs = std::atoi(argv[++i]);
            continue;
        }
        if (arg.rfind("--jobs=", 0) == 0) {
            cfg.jobs = std::atoi(arg.c_str() + 7);
            continue;
        }
        if (!arg.empty() && arg[0] != '-')
            ids.push_back(arg); // flags (--quiet etc.) are not ids
    }
    {
        measure::PhaseTimer phase("sweep");
        if (!ids.empty()) {
            for (const auto &c : measure::characterizeMany(ids, cfg))
                printRow(t, c);
        } else {
            for (const auto &c : measure::characterizeAll(cfg))
                printRow(t, c);
        }
    }
    t.print(std::cout);
    return 0;
}
