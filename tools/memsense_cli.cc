/**
 * @file
 * memsense — command line interface to the whole library.
 *
 * Subcommands:
 *   list                       the workload catalog
 *   solve                      solve a workload on a platform (Eq. 1+4)
 *   sweep latency|bandwidth    sensitivity sweeps (Figs 8/10)
 *   tradeoff                   latency-vs-bandwidth equivalence (Tab. 7)
 *   characterize <workload>    freq-scaling sweep + Eq. 1 fit (Sec. V)
 *   timeseries <workload>      interval-sampled counters (Figs 2/4/5)
 *   mlc                        loaded-latency sweep (Fig. 7)
 *   classify                   fit all workloads, print the Fig. 6 map
 *   tier                       two-tier memory sweep (Eq. 5, Sec. VII)
 *   trace <workload> <file>    record a micro-op trace to a file
 *
 * Run `memsense <subcommand> --help` for the flags of each.
 */

#include <fstream>
#include <iostream>
#include <string>

#include "measure/freq_scaling.hh"
#include "measure/loaded_latency.hh"
#include "measure/timeseries.hh"
#include "model/memsense.hh"
#include "sim/trace.hh"
#include "util/cli.hh"
#include "util/error.hh"
#include "util/log.hh"
#include "util/string_util.hh"
#include "util/table.hh"
#include "workloads/factory.hh"

using namespace memsense;

namespace
{

/** Platform flags shared by the model subcommands. */
void
addPlatformFlags(CliParser &cli)
{
    cli.addInt("cores", 8, "physical cores");
    cli.addInt("smt", 2, "hardware threads per core");
    cli.addDouble("ghz", 2.7, "core frequency (GHz)");
    cli.addInt("channels", 4, "DDR channels");
    cli.addDouble("speed", 1866.7, "DDR rate (MT/s)");
    cli.addDouble("efficiency", 0.70, "sustainable fraction of peak");
    cli.addDouble("latency", 75.0, "compulsory latency (ns)");
}

model::Platform
platformFrom(const CliParser &cli)
{
    model::Platform p;
    p.cores = cli.getInt("cores");
    p.smt = cli.getInt("smt");
    p.ghz = cli.getDouble("ghz");
    p.memory.channels = cli.getInt("channels");
    p.memory.megaTransfers = cli.getDouble("speed");
    p.memory.efficiency = cli.getDouble("efficiency");
    p.memory.compulsoryNs = cli.getDouble("latency");
    return p;
}

/** Workload flags shared by the model subcommands. */
void
addWorkloadFlags(CliParser &cli)
{
    cli.addString("class", "bigdata",
                  "workload class: bigdata | enterprise | hpc");
    cli.addDouble("cpi-cache", 0.0, "CPI_cache (overrides --class)");
    cli.addDouble("bf", 0.0, "blocking factor (overrides --class)");
    cli.addDouble("mpki", 0.0, "LLC MPKI (overrides --class)");
    cli.addDouble("wbr", 0.0, "writebacks per miss (overrides --class)");
}

model::WorkloadParams
workloadFrom(const CliParser &cli)
{
    std::string cls = toLower(cli.getString("class"));
    model::WorkloadClass wc = model::WorkloadClass::BigData;
    if (cls == "enterprise")
        wc = model::WorkloadClass::Enterprise;
    else if (cls == "hpc")
        wc = model::WorkloadClass::Hpc;
    else
        requireConfig(cls == "bigdata",
                      "--class must be bigdata, enterprise, or hpc");
    model::WorkloadParams p = model::paper::classParams(wc);
    if (cli.isSet("cpi-cache"))
        p.cpiCache = cli.getDouble("cpi-cache");
    if (cli.isSet("bf"))
        p.bf = cli.getDouble("bf");
    if (cli.isSet("mpki"))
        p.mpki = cli.getDouble("mpki");
    if (cli.isSet("wbr"))
        p.wbr = cli.getDouble("wbr");
    return p;
}

int
cmdList()
{
    Table t({"id", "display name", "class", "char. cores", "I/O"});
    for (const auto &info : workloads::workloadCatalog()) {
        t.addRow({info.id, info.display, model::className(info.cls),
                  std::to_string(info.characterizationCores),
                  info.io.bytesPerSecond > 0
                      ? formatBandwidth(info.io.bytesPerSecond)
                      : "-"});
    }
    t.print(std::cout);
    return 0;
}

int
cmdSolve(int argc, char **argv)
{
    CliParser cli("memsense solve",
                  "solve a workload's operating point (Eq. 1 + Eq. 4)");
    addPlatformFlags(cli);
    addWorkloadFlags(cli);
    if (!cli.parse(argc, argv))
        return 1;
    model::Platform plat = platformFrom(cli);
    model::WorkloadParams p = workloadFrom(cli);

    model::Solver solver;
    model::OperatingPoint op = solver.solve(p, plat);
    std::cout << "platform : " << plat.describe() << "\n";
    std::cout << strformat("workload : %s (CPI_cache %.2f, BF %.2f, "
                           "MPKI %.1f, WBR %.0f%%)\n",
                           p.name.c_str(), p.cpiCache, p.bf, p.mpki,
                           p.wbr * 100.0);
    std::cout << strformat("CPI      : %.3f (%s)\n", op.cpiEff,
                           op.bandwidthBound ? "bandwidth bound"
                                             : "latency limited");
    std::cout << strformat("latency  : %.1f ns loaded (%.1f ns "
                           "queuing)\n",
                           op.missPenaltyNs, op.queuingDelayNs);
    std::cout << strformat("bandwidth: %.1f GB/s (%.0f%% of "
                           "available)\n",
                           op.bandwidthTotalBps / 1e9,
                           op.utilization * 100.0);
    return 0;
}

int
cmdSweep(int argc, char **argv)
{
    CliParser cli("memsense sweep",
                  "latency / bandwidth sensitivity sweep "
                  "(positional: latency | bandwidth)");
    addPlatformFlags(cli);
    addWorkloadFlags(cli);
    cli.addDouble("max-extra-ns", 60.0, "latency sweep range");
    cli.addDouble("step-ns", 10.0, "latency sweep step");
    if (!cli.parse(argc, argv))
        return 1;
    requireConfig(!cli.positional().empty(),
                  "sweep needs 'latency' or 'bandwidth'");
    std::string kind = cli.positional()[0];
    model::Platform plat = platformFrom(cli);
    model::WorkloadParams p = workloadFrom(cli);
    model::SensitivityAnalyzer an{model::Solver(), plat};

    if (kind == "latency") {
        Table t({"compulsory (ns)", "CPI", "increase", "BW bound"});
        for (const auto &pt :
             an.latencySweep(p, cli.getDouble("max-extra-ns"),
                             cli.getDouble("step-ns"))) {
            t.addRow({formatDouble(pt.compulsoryNs, 0),
                      formatDouble(pt.op.cpiEff, 3),
                      formatPercent(pt.cpiIncreaseFrac, 1),
                      pt.op.bandwidthBound ? "yes" : "no"});
        }
        t.print(std::cout);
        return 0;
    }
    if (kind == "bandwidth") {
        auto variants = model::SensitivityAnalyzer::
            standardBandwidthVariants(plat.memory);
        Table t({"memory", "GB/s per core", "CPI", "increase",
                 "BW bound"});
        for (const auto &pt : an.bandwidthSweep(p, variants)) {
            t.addRow({pt.memory.describe(),
                      formatDouble(pt.bwPerCoreGBps, 2),
                      formatDouble(pt.op.cpiEff, 3),
                      formatPercent(pt.cpiIncreaseFrac, 1),
                      pt.op.bandwidthBound ? "yes" : "no"});
        }
        t.print(std::cout);
        return 0;
    }
    std::cerr << "unknown sweep kind: " << kind << "\n";
    return 1;
}

int
cmdTradeoff(int argc, char **argv)
{
    CliParser cli("memsense tradeoff",
                  "latency vs. bandwidth equivalence (Table 7)");
    addPlatformFlags(cli);
    addWorkloadFlags(cli);
    if (!cli.parse(argc, argv))
        return 1;
    model::EquivalenceAnalyzer an{model::Solver(), platformFrom(cli)};
    model::TradeoffSummary s = an.summarize(workloadFrom(cli));
    std::cout << strformat(
        "baseline CPI %.3f\n+1 GB/s/core : %+.2f%%\n-10 ns       : "
        "%+.2f%%\n10 ns is worth %.1f GB/s; 1 GB/s/core is worth "
        "%.1f ns\n",
        s.baselineCpi, s.perfGainBandwidthPct, s.perfGainLatencyPct,
        s.bandwidthEquivalentGBps, s.latencyEquivalentNs);
    return 0;
}

int
cmdCharacterize(int argc, char **argv)
{
    CliParser cli("memsense characterize",
                  "frequency-scaling sweep + Eq. 1 fit "
                  "(positional: workload id)");
    cli.addBool("fast", "smaller simulation windows");
    cli.addInt("cores", 0, "override characterization core count");
    cli.addInt("jobs", 1,
               "sweep worker threads (0 = hardware threads); results "
               "are identical for any value");
    if (!cli.parse(argc, argv))
        return 1;
    requireConfig(!cli.positional().empty(),
                  "characterize needs a workload id (see `memsense "
                  "list`)");
    measure::FreqScalingConfig cfg;
    if (cli.getBool("fast")) {
        cfg.coreGhz = {2.1, 2.7, 3.1};
        cfg.measure = nsToPicos(600'000.0);
        cfg.warmup = nsToPicos(4'000'000.0);
        cfg.adaptiveWarmup = false;
    }
    cfg.coresOverride = cli.getInt("cores");
    cfg.jobs = cli.getInt("jobs");
    auto c = measure::characterize(cli.positional()[0], cfg);
    std::cout << strformat(
        "%s: CPI = %.3f + %.3f * (MPI*MP), R^2 = %.3f\n"
        "MPKI %.1f, WBR %.0f%%%s\n",
        c.model.params.name.c_str(), c.model.params.cpiCache,
        c.model.params.bf, c.model.fit.r2, c.model.params.mpki,
        c.model.params.wbr * 100.0,
        c.model.coreBound ? " (core bound)" : "");
    return 0;
}

int
cmdTimeseries(int argc, char **argv)
{
    CliParser cli("memsense timeseries",
                  "interval-sampled counters (positional: workload id)");
    cli.addInt("samples", 30, "number of intervals");
    cli.addDouble("interval-us", 100.0, "virtual interval (us)");
    if (!cli.parse(argc, argv))
        return 1;
    requireConfig(!cli.positional().empty(),
                  "timeseries needs a workload id");
    const auto &info = workloads::workloadInfo(cli.positional()[0]);
    measure::TimeSeriesConfig cfg;
    cfg.run.workloadId = info.id;
    cfg.run.cores = info.characterizationCores;
    cfg.interval = nsToPicos(cli.getDouble("interval-us") * 1000.0);
    cfg.samples = cli.getInt("samples");
    measure::TimeSeries ts = measure::captureTimeSeries(cfg);
    Table t({"t (ms)", "util", "CPI", "BW (GB/s)", "MPKI", "MP (ns)"});
    for (const auto &s : ts.samples) {
        t.addRow({formatDouble(s.timeMs, 2),
                  formatPercent(s.cpuUtilization, 0),
                  formatDouble(s.cpi, 2),
                  formatDouble(s.bandwidthGBps, 2),
                  formatDouble(s.mpki, 1),
                  formatDouble(s.missPenaltyNs, 1)});
    }
    t.print(std::cout);
    return 0;
}

int
cmdMlc(int argc, char **argv)
{
    CliParser cli("memsense mlc",
                  "loaded-latency sweep (the Fig. 7 measurement)");
    cli.addDouble("speed", 1866.7, "DDR rate (MT/s)");
    cli.addDouble("read-fraction", 1.0, "generator read share");
    cli.addInt("cores", 8, "1 probe + N-1 generators");
    cli.addInt("jobs", 1,
               "sweep worker threads (0 = hardware threads)");
    if (!cli.parse(argc, argv))
        return 1;
    measure::LoadedLatencySetup setup;
    setup.memMtPerSec = cli.getDouble("speed");
    setup.readFraction = cli.getDouble("read-fraction");
    setup.cores = cli.getInt("cores");
    setup.jobs = cli.getInt("jobs");
    auto c = measure::sweepLoadedLatency(setup);
    std::cout << strformat("unloaded %.1f ns, achievable %.1f GB/s\n",
                           c.unloadedNs, c.maxBandwidthGBps);
    Table t({"delay (cyc)", "BW (GB/s)", "util", "latency (ns)",
             "queuing (ns)"});
    for (const auto &p : c.points) {
        t.addRow({std::to_string(p.delayCycles),
                  formatDouble(p.bandwidthGBps, 2),
                  formatPercent(p.bandwidthGBps / c.maxBandwidthGBps, 0),
                  formatDouble(p.latencyNs, 1),
                  formatDouble(p.latencyNs - c.unloadedNs, 1)});
    }
    t.print(std::cout);
    return 0;
}

int
cmdClassify(int argc, char **argv)
{
    CliParser cli("memsense classify",
                  "characterize all workloads and print the Fig. 6 map");
    cli.addBool("paper", "use published values instead of fitting");
    cli.addInt("jobs", 1,
               "sweep worker threads (0 = hardware threads); results "
               "are identical for any value");
    if (!cli.parse(argc, argv))
        return 1;
    std::vector<model::WorkloadParams> params;
    if (cli.getBool("paper")) {
        params = model::paper::allWorkloadParams();
    } else {
        measure::FreqScalingConfig cfg;
        cfg.coreGhz = {2.1, 2.7, 3.1};
        cfg.measure = nsToPicos(600'000.0);
        cfg.warmup = nsToPicos(4'000'000.0);
        cfg.adaptiveWarmup = false;
        cfg.jobs = cli.getInt("jobs");
        for (const auto &c : measure::characterizeAll(cfg))
            params.push_back(c.model.params);
    }
    model::Classification cls = model::classify(params);
    Table t({"workload", "class", "BF", "refs/cycle", "core bound"});
    for (const auto &pt : cls.points) {
        t.addRow({pt.name, model::className(pt.cls),
                  formatDouble(pt.bf, 3),
                  formatDouble(pt.refsPerCycle, 4),
                  pt.coreBound ? "yes" : "no"});
    }
    t.print(std::cout);
    std::cout << strformat("\nk-means agreement with labels: %.0f%%\n",
                           cls.clusterAgreement * 100.0);
    return 0;
}

int
cmdTier(int argc, char **argv)
{
    CliParser cli("memsense tier",
                  "two-tier memory sweep (Eq. 5, Sec. VII)");
    addWorkloadFlags(cli);
    cli.addDouble("footprint-gb", 256.0, "workload footprint (GB)");
    cli.addDouble("near-latency", 75.0, "near tier latency (ns)");
    cli.addDouble("near-bw", 40.0, "near tier bandwidth (GB/s)");
    cli.addDouble("far-latency", 300.0, "far tier latency (ns)");
    cli.addDouble("far-bw", 12.0, "far tier bandwidth (GB/s)");
    cli.addDouble("theta", 0.5, "locality exponent (0, 1]");
    if (!cli.parse(argc, argv))
        return 1;
    model::MemoryTier near{"near", cli.getDouble("near-latency"),
                           cli.getDouble("near-bw"), 0.0};
    model::MemoryTier far{"far", cli.getDouble("far-latency"),
                          cli.getDouble("far-bw"), 1024.0};
    model::TieredMemoryModel tiered(near, far,
                                    cli.getDouble("footprint-gb"),
                                    cli.getDouble("theta"));
    model::WorkloadParams p = workloadFrom(cli);
    std::vector<double> caps;
    for (double c = cli.getDouble("footprint-gb") / 64.0;
         c <= cli.getDouble("footprint-gb"); c *= 2.0) {
        caps.push_back(c);
    }
    auto sweep = tiered.capacitySweep(p, 2.7, 8, caps);
    Table t({"near (GB)", "hit", "CPI", "far util", "far bound"});
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        t.addRow({formatDouble(caps[i], 1),
                  formatPercent(sweep[i].hitFraction, 0),
                  formatDouble(sweep[i].cpiEff, 3),
                  formatPercent(sweep[i].farUtilization, 0),
                  sweep[i].farBandwidthBound ? "yes" : "no"});
    }
    t.print(std::cout);
    return 0;
}

int
cmdReport(int argc, char **argv)
{
    CliParser cli("memsense report",
                  "full markdown sensitivity report for a workload");
    addPlatformFlags(cli);
    addWorkloadFlags(cli);
    if (!cli.parse(argc, argv))
        return 1;
    model::SensitivityReport r = model::buildReport(
        model::Solver(), workloadFrom(cli), platformFrom(cli));
    std::cout << r.toMarkdown();
    return 0;
}

int
cmdTrace(int argc, char **argv)
{
    CliParser cli("memsense trace",
                  "record a workload's micro-op trace "
                  "(positional: workload id, output file)");
    cli.addInt("ops", 100000, "ops to record");
    cli.addInt("seed", 1, "generator seed");
    if (!cli.parse(argc, argv))
        return 1;
    requireConfig(cli.positional().size() >= 2,
                  "trace needs a workload id and an output file");
    auto w = workloads::makeWorkload(cli.positional()[0], 0,
                                     static_cast<std::uint64_t>(
                                         cli.getInt("seed")));
    sim::RecordingStream rec(*w,
                             static_cast<std::size_t>(cli.getInt("ops")));
    sim::MicroOp op;
    for (int i = 0; i < cli.getInt("ops"); ++i) {
        if (!rec.next(op))
            break;
    }
    std::ofstream out(cli.positional()[1]);
    requireConfig(static_cast<bool>(out),
                  "cannot open " + cli.positional()[1]);
    rec.trace().save(out);
    std::cout << strformat("wrote %zu ops (%llu instructions, %llu "
                           "memory ops) to %s\n",
                           rec.trace().size(),
                           static_cast<unsigned long long>(
                               rec.trace().instructionCount()),
                           static_cast<unsigned long long>(
                               rec.trace().memOpCount()),
                           cli.positional()[1].c_str());
    return 0;
}

void
usage()
{
    std::cout <<
        "memsense — memory latency/bandwidth sensitivity toolkit\n"
        "\nsubcommands:\n"
        "  list          the workload catalog\n"
        "  solve         operating point of a workload on a platform\n"
        "  sweep         latency|bandwidth sensitivity sweeps\n"
        "  tradeoff      latency vs. bandwidth equivalence (Table 7)\n"
        "  characterize  freq-scaling sweep + Eq. 1 fit\n"
        "  timeseries    interval-sampled counters\n"
        "  mlc           loaded-latency sweep (Fig. 7)\n"
        "  classify      fit all workloads, print the Fig. 6 map\n"
        "  tier          two-tier memory sweep (Eq. 5)\n"
        "  report        full markdown sensitivity report\n"
        "  trace         record a micro-op trace\n"
        "\nrun `memsense <subcommand> --help` for flags.\n";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    setLogLevel(LogLevel::Warn);
    if (argc < 2) {
        usage();
        return 1;
    }
    std::string cmd = argv[1];
    // Shift argv so each subcommand parses its own flags.
    int sub_argc = argc - 1;
    char **sub_argv = argv + 1;
    try {
        if (cmd == "list")
            return cmdList();
        if (cmd == "solve")
            return cmdSolve(sub_argc, sub_argv);
        if (cmd == "sweep")
            return cmdSweep(sub_argc, sub_argv);
        if (cmd == "tradeoff")
            return cmdTradeoff(sub_argc, sub_argv);
        if (cmd == "characterize")
            return cmdCharacterize(sub_argc, sub_argv);
        if (cmd == "timeseries")
            return cmdTimeseries(sub_argc, sub_argv);
        if (cmd == "mlc")
            return cmdMlc(sub_argc, sub_argv);
        if (cmd == "classify")
            return cmdClassify(sub_argc, sub_argv);
        if (cmd == "tier")
            return cmdTier(sub_argc, sub_argv);
        if (cmd == "report")
            return cmdReport(sub_argc, sub_argv);
        if (cmd == "trace")
            return cmdTrace(sub_argc, sub_argv);
        if (cmd == "--help" || cmd == "help") {
            usage();
            return 0;
        }
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
    std::cerr << "unknown subcommand: " << cmd << "\n\n";
    usage();
    return 1;
}
