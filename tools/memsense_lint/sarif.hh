/**
 * @file
 * SARIF 2.1.0 writer, so CI viewers (GitHub code scanning, VS Code
 * SARIF explorer) can render memsense-lint findings inline. Emits the
 * minimal valid document: one run, the full rule catalog under
 * tool.driver.rules, and one result per finding with a physical
 * location (uri + startLine).
 */

#ifndef MEMSENSE_LINT_SARIF_HH
#define MEMSENSE_LINT_SARIF_HH

#include <string>
#include <vector>

#include "rules.hh"

namespace memsense::lint
{

/** Render @p findings as a SARIF 2.1.0 document. */
std::string sarifReport(const std::vector<Finding> &findings);

} // namespace memsense::lint

#endif // MEMSENSE_LINT_SARIF_HH
