#include "symbols.hh"

#include <algorithm>
#include <set>

namespace memsense::lint
{

namespace
{

const Token kNullTok{TokKind::Punct, "", 0};

const Token &
at(const std::vector<Token> &toks, std::size_t i)
{
    return i < toks.size() ? toks[i] : kNullTok;
}

bool
isIdent(const Token &t, const char *text)
{
    return t.kind == TokKind::Ident && t.text == text;
}

bool
isPunct(const Token &t, const char *text)
{
    return t.kind == TokKind::Punct && t.text == text;
}

std::size_t
matchDelim(const std::vector<Token> &toks, std::size_t open,
           const char *opener, const char *closer)
{
    int depth = 0;
    for (std::size_t i = open; i < toks.size(); ++i) {
        if (isPunct(toks[i], opener))
            ++depth;
        else if (isPunct(toks[i], closer) && --depth == 0)
            return i;
    }
    return toks.size();
}

/** Keywords that produce `name (` without being a function head. */
const std::set<std::string> &
notFunctionKeywords()
{
    static const std::set<std::string> kw = {
        "if",       "for",        "while",    "switch",   "return",
        "catch",    "sizeof",     "alignas",  "alignof",  "decltype",
        "noexcept", "throw",      "new",      "delete",   "operator",
        "co_await", "co_return",  "co_yield", "typedef",  "using",
        "static_assert",
    };
    return kw;
}

/** Type/specifier words that cannot be a parameter's *name*. */
const std::set<std::string> &
typeKeywords()
{
    static const std::set<std::string> kw = {
        "void",     "bool",     "char",      "short",    "int",
        "long",     "float",    "double",    "unsigned", "signed",
        "const",    "constexpr", "volatile", "mutable",  "auto",
        "std",      "size_t",   "ssize_t",   "ptrdiff_t",
        "int8_t",   "int16_t",  "int32_t",   "int64_t",  "uint8_t",
        "uint16_t", "uint32_t", "uint64_t",  "uintptr_t", "intptr_t",
        "string",   "string_view",
    };
    return kw;
}

/** Split a parameter list into per-parameter token slices. */
std::vector<std::vector<Token>>
splitParams(const std::vector<Token> &toks, std::size_t open,
            std::size_t close)
{
    std::vector<std::vector<Token>> pieces;
    std::vector<Token> cur;
    int par = 0, ang = 0, brc = 0, sq = 0;
    for (std::size_t i = open + 1; i < close; ++i) {
        const Token &t = toks[i];
        if (t.kind == TokKind::Punct) {
            if (t.text == "(")
                ++par;
            else if (t.text == ")")
                --par;
            else if (t.text == "{")
                ++brc;
            else if (t.text == "}")
                --brc;
            else if (t.text == "[")
                ++sq;
            else if (t.text == "]")
                --sq;
            else if (t.text == "<")
                ++ang;
            else if (t.text == ">" && ang > 0)
                --ang;
            else if (t.text == ">>")
                ang = std::max(0, ang - 2);
            else if (t.text == "," && par == 0 && ang == 0 && brc == 0 &&
                     sq == 0) {
                pieces.push_back(cur);
                cur.clear();
                continue;
            }
        }
        cur.push_back(t);
    }
    if (!cur.empty())
        pieces.push_back(cur);
    return pieces;
}

/** Parse one parameter slice into name / unit / floating-ness. */
ParamDecl
parseParam(const std::vector<Token> &piece)
{
    ParamDecl p;
    std::string last_ident;
    Unit type_unit = Unit::Unknown;
    int par = 0, ang = 0;
    for (const Token &t : piece) {
        if (t.kind == TokKind::Punct) {
            if (t.text == "=" && par == 0 && ang == 0)
                break; // default argument
            if (t.text == "(")
                ++par;
            else if (t.text == ")")
                --par;
            else if (t.text == "<")
                ++ang;
            else if (t.text == ">" && ang > 0)
                --ang;
            else if (t.text == ">>")
                ang = std::max(0, ang - 2);
            continue;
        }
        if (t.kind != TokKind::Ident || par != 0 || ang != 0)
            continue;
        last_ident = t.text;
        if (t.text == "double" || t.text == "float")
            p.floating = true;
        Unit tu = unitFromTypeName(t.text);
        if (tu != Unit::Unknown)
            type_unit = tu;
    }
    if (!last_ident.empty() && typeKeywords().count(last_ident) == 0)
        p.name = last_ident;
    p.unit = unitFromIdentifier(p.name);
    if (p.unit == Unit::Unknown)
        p.unit = type_unit;
    return p;
}

/** A classified scope awaiting (or on) the stack. */
struct Scope
{
    char kind = 'b'; ///< 'n' namespace, 'c' class, 'f' function, 'b' block
    std::string name;
    bool anon = false;     ///< anonymous namespace
    std::size_t fn = SIZE_MAX; ///< functions[] index for kind 'f'
};

} // anonymous namespace

const FunctionDecl *
Symbols::enclosing(std::size_t i) const
{
    const FunctionDecl *best = nullptr;
    for (const FunctionDecl &f : functions) {
        if (!f.hasBody() || i <= f.bodyBegin || i >= f.bodyEnd)
            continue;
        if (!best || f.bodyEnd - f.bodyBegin < best->bodyEnd - best->bodyBegin)
            best = &f;
    }
    return best;
}

const FunctionDecl *
Symbols::enclosingLine(int line) const
{
    const FunctionDecl *best = nullptr;
    for (const FunctionDecl &f : functions) {
        int first = f.hasBody() ? std::min(f.line, f.firstLine) : f.line;
        int last = f.hasBody() ? f.lastLine : f.line;
        if (line < first || line > last)
            continue;
        if (!best || last - first < best->lastLine - best->firstLine)
            best = &f;
    }
    return best;
}

std::string
fileStem(const std::string &path)
{
    std::string p = path;
    std::replace(p.begin(), p.end(), '\\', '/');
    std::size_t dot = p.find_last_of('.');
    std::size_t slash = p.find_last_of('/');
    if (dot != std::string::npos &&
        (slash == std::string::npos || dot > slash))
        p.resize(dot);
    return p;
}

Symbols
scanSymbols(const LexResult &lexed)
{
    const std::vector<Token> &toks = lexed.tokens;
    Symbols out;

    std::map<std::size_t, Scope> pending; // '{' token index -> scope
    std::vector<Scope> stack;
    // Class body token ranges, for attributing guarded fields.
    std::vector<std::pair<std::string, std::pair<std::size_t, std::size_t>>>
        class_ranges;

    auto in_function = [&stack]() {
        return std::any_of(stack.begin(), stack.end(),
                           [](const Scope &s) { return s.kind == 'f'; });
    };
    auto current_class = [&stack]() -> std::string {
        for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
            if (it->kind == 'c')
                return it->name;
        }
        return std::string();
    };
    auto in_anon_namespace = [&stack]() {
        return std::any_of(stack.begin(), stack.end(), [](const Scope &s) {
            return s.kind == 'n' && s.anon;
        });
    };

    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];

        if (isPunct(t, "{")) {
            auto it = pending.find(i);
            Scope s = it != pending.end() ? it->second : Scope{};
            if (s.kind == 'f' && s.fn < out.functions.size()) {
                out.functions[s.fn].bodyBegin = i;
                out.functions[s.fn].firstLine = t.line;
            }
            stack.push_back(s);
            continue;
        }
        if (isPunct(t, "}")) {
            if (!stack.empty()) {
                const Scope &s = stack.back();
                if (s.kind == 'f' && s.fn < out.functions.size()) {
                    out.functions[s.fn].bodyEnd = i;
                    out.functions[s.fn].lastLine = t.line;
                }
                stack.pop_back();
            }
            continue;
        }
        if (in_function())
            continue;

        if (isIdent(t, "namespace")) {
            std::size_t j = i + 1;
            std::string name;
            bool anon = true;
            while (at(toks, j).kind == TokKind::Ident ||
                   isPunct(at(toks, j), "::")) {
                if (at(toks, j).kind == TokKind::Ident) {
                    if (!name.empty())
                        name += "::";
                    name += at(toks, j).text;
                    anon = false;
                }
                ++j;
            }
            if (isPunct(at(toks, j), "{"))
                pending[j] = Scope{'n', name, anon, SIZE_MAX};
            i = j - 1;
            continue;
        }

        if ((isIdent(t, "class") || isIdent(t, "struct")) &&
            !isIdent(at(toks, i - 1), "enum") &&
            !isPunct(at(toks, i - 1), "<") && !isPunct(at(toks, i - 1), ",")) {
            std::size_t j = i + 1;
            if (isIdent(at(toks, j), "alignas") &&
                isPunct(at(toks, j + 1), "("))
                j = matchDelim(toks, j + 1, "(", ")") + 1;
            std::string cname;
            if (at(toks, j).kind == TokKind::Ident) {
                cname = at(toks, j).text;
                ++j;
            }
            while (j < toks.size() && !isPunct(toks[j], "{") &&
                   !isPunct(toks[j], ";") && !isPunct(toks[j], "(") &&
                   !isPunct(toks[j], "="))
                ++j;
            if (j < toks.size() && isPunct(toks[j], "{")) {
                pending[j] = Scope{'c', cname, false, SIZE_MAX};
                class_ranges.push_back(
                    {cname, {j, matchDelim(toks, j, "{", "}")}});
            }
            i = j - 1;
            continue;
        }

        // Candidate function head: `name ( ... )` followed by a body,
        // a ';', or `= default/delete/0`.
        if (t.kind != TokKind::Ident || !isPunct(at(toks, i + 1), "(") ||
            notFunctionKeywords().count(t.text) != 0)
            continue;
        std::size_t close = matchDelim(toks, i + 1, "(", ")");
        if (close >= toks.size())
            continue;

        // Walk the trailing specifier soup to the head's end.
        std::size_t k = close + 1;
        while (k < toks.size()) {
            const Token &h = toks[k];
            if (isIdent(h, "const") || isIdent(h, "noexcept") ||
                isIdent(h, "override") || isIdent(h, "final") ||
                isIdent(h, "mutable")) {
                ++k;
                continue;
            }
            if (isPunct(h, "(")) { // noexcept(...)
                k = matchDelim(toks, k, "(", ")") + 1;
                continue;
            }
            if (isPunct(h, "->")) { // trailing return type
                ++k;
                while (k < toks.size() && !isPunct(toks[k], "{") &&
                       !isPunct(toks[k], ";") && !isPunct(toks[k], "="))
                    ++k;
                continue;
            }
            break;
        }
        if (isPunct(at(toks, k), ":")) {
            // Constructor init list: hop over `name(...)` / `name{...}`
            // entries until the body '{'.
            ++k;
            while (k < toks.size()) {
                while (at(toks, k).kind == TokKind::Ident ||
                       isPunct(at(toks, k), "::") ||
                       isPunct(at(toks, k), "<") || isPunct(at(toks, k), ">"))
                    ++k;
                if (isPunct(at(toks, k), "("))
                    k = matchDelim(toks, k, "(", ")") + 1;
                else if (isPunct(at(toks, k), "{"))
                    k = matchDelim(toks, k, "{", "}") + 1;
                else
                    break;
                if (isPunct(at(toks, k), ",")) {
                    ++k;
                    continue;
                }
                break;
            }
        }
        bool is_def = isPunct(at(toks, k), "{");
        bool is_decl = isPunct(at(toks, k), ";");
        if (!is_def && isPunct(at(toks, k), "=")) {
            const Token &v = at(toks, k + 1);
            is_decl = isIdent(v, "default") || isIdent(v, "delete") ||
                      v.kind == TokKind::Number;
        }
        if (!is_def && !is_decl)
            continue;

        FunctionDecl fd;
        fd.name = t.text;
        fd.line = t.line;
        std::size_t name_start = i;
        if (isPunct(at(toks, i - 1), "~")) {
            fd.ctorOrDtor = true;
            name_start = i - 1;
        }
        // Out-of-class qualification: `Class::name(`.
        std::size_t q = name_start;
        std::string qual_class;
        while (isPunct(at(toks, q - 1), "::") &&
               at(toks, q - 2).kind == TokKind::Ident) {
            qual_class = at(toks, q - 2).text;
            q -= 2;
        }
        fd.className = !qual_class.empty() ? qual_class : current_class();
        if (!fd.className.empty() && fd.name == fd.className)
            fd.ctorOrDtor = true;
        fd.qualified = fd.className.empty()
                           ? fd.name
                           : fd.className + "::" + fd.name;

        // Declaration prefix: linkage and return-type units.
        bool is_static = false;
        Unit ret_type_unit = Unit::Unknown;
        for (std::size_t b = q; b > 0 && q - b < 40;) {
            --b;
            const Token &pt = toks[b];
            if (isPunct(pt, ";") || isPunct(pt, "{") || isPunct(pt, "}") ||
                isPunct(pt, ":"))
                break;
            if (isIdent(pt, "static"))
                is_static = true;
            if (pt.kind == TokKind::Ident) {
                Unit tu = unitFromTypeName(pt.text);
                if (tu != Unit::Unknown)
                    ret_type_unit = tu;
            }
        }
        fd.externallyLinked =
            !in_anon_namespace() &&
            !(is_static && fd.className.empty() && current_class().empty());
        fd.returnUnit = unitFromIdentifier(fd.name);
        if (fd.returnUnit == Unit::Unknown)
            fd.returnUnit = ret_type_unit;

        for (const auto &piece : splitParams(toks, i + 1, close)) {
            if (piece.size() == 1 && isIdent(piece[0], "void"))
                continue;
            fd.params.push_back(parseParam(piece));
        }

        std::size_t fn_idx = out.functions.size();
        out.functions.push_back(fd);
        if (is_def) {
            pending[k] = Scope{'f', fd.qualified, false, fn_idx};
            i = k - 1; // resume at the body '{'
        } else {
            i = k; // resume after the declaration
        }
    }

    // Variables whose declared type is a unit-bearing alias.
    for (std::size_t i = 0; i < toks.size(); ++i) {
        Unit tu = toks[i].kind == TokKind::Ident
                      ? unitFromTypeName(toks[i].text)
                      : Unit::Unknown;
        if (tu == Unit::Unknown || isIdent(at(toks, i - 1), "using"))
            continue;
        std::size_t j = i + 1;
        while (isIdent(at(toks, j), "const") || isPunct(at(toks, j), "&") ||
               isPunct(at(toks, j), "*"))
            ++j;
        if (at(toks, j).kind == TokKind::Ident &&
            !isPunct(at(toks, j + 1), "("))
            out.typedUnits[at(toks, j).text] = tu;
    }

    // guarded_by annotations: `// memsense-lint: guarded_by(mu)` on the
    // field's own line or a comment line directly above it.
    for (const auto &[line, text] : lexed.comments) {
        std::size_t tag = text.find("memsense-lint:");
        if (tag == std::string::npos)
            continue;
        std::size_t open = text.find("guarded_by(", tag);
        if (open == std::string::npos)
            continue;
        std::size_t close_paren = text.find(')', open);
        if (close_paren == std::string::npos)
            continue;
        std::string mutex_name =
            text.substr(open + 11, close_paren - open - 11);
        // First token on the annotated line, else the next code line
        // (comment-above form; stay adjacent).
        std::size_t fi = toks.size();
        for (std::size_t i = 0; i < toks.size(); ++i) {
            if (toks[i].line == line) {
                fi = i;
                break;
            }
            if (toks[i].line > line && toks[i].line <= line + 2) {
                fi = i;
                break;
            }
            if (toks[i].line > line + 2)
                break;
        }
        if (fi >= toks.size())
            continue;
        GuardedField gf;
        gf.mutexName = mutex_name;
        gf.line = toks[fi].line;
        for (std::size_t i = fi; i < toks.size(); ++i) {
            const Token &ft = toks[i];
            if (isPunct(ft, "=") || isPunct(ft, "{") || isPunct(ft, ";"))
                break;
            if (ft.kind == TokKind::Ident)
                gf.field = ft.text;
        }
        if (gf.field.empty())
            continue;
        for (const auto &[cname, range] : class_ranges) {
            if (fi > range.first && fi < range.second)
                gf.className = cname;
        }
        out.guarded.push_back(gf);
    }

    return out;
}

void
SymbolIndex::merge(const std::string &path, const Symbols &syms)
{
    for (const FunctionDecl &fd : syms.functions) {
        std::vector<Unit> units;
        units.reserve(fd.params.size());
        for (const ParamDecl &p : fd.params)
            units.push_back(p.unit);
        auto it = functions.find(fd.name);
        if (it == functions.end()) {
            functions.emplace(fd.name, SigInfo{std::move(units), false});
        } else if (it->second.paramUnits != units) {
            it->second.ambiguous = true;
        }
    }
    if (!syms.guarded.empty()) {
        auto &slot = guardedByStem[fileStem(path)];
        slot.insert(slot.end(), syms.guarded.begin(), syms.guarded.end());
    }
}

} // namespace memsense::lint
