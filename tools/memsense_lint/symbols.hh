/**
 * @file
 * Declaration / symbol-table layer for the semantic lint rules.
 *
 * Still no AST and no preprocessor: the scanner walks the token stream
 * once, tracking a scope stack (namespaces, classes, function bodies)
 * and recording what the semantic rules need — function signatures
 * with unit-tagged parameters, variables whose *type* carries a unit
 * (`Picos`, `Cycles`), `guarded_by` field annotations, and the token /
 * line span of every function body so findings can be attributed to a
 * stable symbol (the baseline key) instead of a line number.
 *
 * Cross-file analysis happens through SymbolIndex: the driver scans
 * every file first, merges the per-file tables, and then runs the
 * rules with the merged index in scope, so a call in `solver.cc` can
 * be checked against a signature declared in `solver.hh`. Ambiguity is
 * handled by refusing to guess: two declarations of the same name with
 * different arity or unit pattern mark the entry ambiguous and the
 * call-site checks skip it.
 */

#ifndef MEMSENSE_LINT_SYMBOLS_HH
#define MEMSENSE_LINT_SYMBOLS_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "lexer.hh"
#include "units.hh"

namespace memsense::lint
{

/** One declared function parameter. */
struct ParamDecl
{
    std::string name; ///< empty when the parameter is unnamed
    Unit unit = Unit::Unknown; ///< from name suffix or Picos/Cycles type
    bool floating = false;     ///< declared double / float
};

/** One function declaration or definition found in a file. */
struct FunctionDecl
{
    std::string name;      ///< unqualified name
    std::string qualified; ///< Class::name for members, else name
    std::string className; ///< enclosing / scoping class, may be empty
    int line = 0;          ///< line of the name token
    int firstLine = 0;     ///< body start line (definitions only)
    int lastLine = 0;      ///< body end line (definitions only)
    std::size_t bodyBegin = SIZE_MAX; ///< token index of body '{'
    std::size_t bodyEnd = SIZE_MAX;   ///< token index of matching '}'
    std::vector<ParamDecl> params;
    Unit returnUnit = Unit::Unknown; ///< from name suffix or return type
    bool externallyLinked = true; ///< false: static or anon namespace
    bool ctorOrDtor = false;

    bool hasBody() const { return bodyBegin != SIZE_MAX; }
};

/** A field annotated `// memsense-lint: guarded_by(<mutex>)`. */
struct GuardedField
{
    std::string field;     ///< annotated field name
    std::string mutexName; ///< guarding mutex (last path component)
    std::string className; ///< class declaring the field
    int line = 0;          ///< declaration line
};

/** Per-file symbol table. */
struct Symbols
{
    std::vector<FunctionDecl> functions;
    /** Variables whose declared type names a unit (Picos, Cycles). */
    std::map<std::string, Unit> typedUnits;
    std::vector<GuardedField> guarded;

    /** Innermost function definition whose body spans token @p i. */
    const FunctionDecl *enclosing(std::size_t i) const;

    /** Innermost function definition whose body spans @p line. */
    const FunctionDecl *enclosingLine(int line) const;
};

/** Scan one tokenized file into its symbol table. */
Symbols scanSymbols(const LexResult &lexed);

/** Merged signature of one function name across the analyzed tree. */
struct SigInfo
{
    std::vector<Unit> paramUnits;
    bool ambiguous = false; ///< conflicting declarations seen
};

/** Path minus extension with forward slashes ("src/serve/cache"). */
std::string fileStem(const std::string &path);

/** Cross-file symbol index built from every scanned file. */
struct SymbolIndex
{
    /** Function name -> merged signature. */
    std::map<std::string, SigInfo> functions;
    /**
     * guarded_by annotations keyed by declaring file stem, so a field
     * annotated in `foo.hh` is enforced in `foo.hh` and `foo.cc` but
     * an unrelated field of the same name elsewhere is not.
     */
    std::map<std::string, std::vector<GuardedField>> guardedByStem;

    /** Merge @p syms scanned from @p path into the index. */
    void merge(const std::string &path, const Symbols &syms);
};

} // namespace memsense::lint

#endif // MEMSENSE_LINT_SYMBOLS_HH
