#include "lexer.hh"

#include <cctype>

namespace memsense::lint
{

namespace
{

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Multi-character punctuators, longest first so matching is greedy. */
const char *const kPuncts[] = {
    "<<=", ">>=", "...", "->*", "<=>", "==", "!=", "<=", ">=", "&&", "||",
    "<<",  ">>",  "->",  "::",  "++",  "--", "+=", "-=", "*=", "/=", "%=",
    "&=",  "|=",  "^=",  ".*",
};

} // anonymous namespace

bool
isFloatLiteral(const std::string &text)
{
    if (text.size() > 1 && (text[0] == '0') &&
        (text[1] == 'x' || text[1] == 'X')) {
        // Hex floats carry a 'p' exponent; plain hex is integral.
        return text.find('p') != std::string::npos ||
               text.find('P') != std::string::npos;
    }
    for (char c : text) {
        if (c == '.' || c == 'e' || c == 'E')
            return true;
    }
    return false;
}

LexResult
tokenize(const std::string &source)
{
    LexResult out;
    const std::size_t n = source.size();
    std::size_t i = 0;
    int line = 1;

    auto addComment = [&out](int at_line, const std::string &text) {
        std::string &slot = out.comments[at_line];
        if (!slot.empty())
            slot += ' ';
        slot += text;
    };

    while (i < n) {
        char c = source[i];

        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (c == '\\' && i + 1 < n && source[i + 1] == '\n') {
            ++line;
            i += 2;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }

        // Line comment: capture text for suppression parsing. A
        // backslash-newline splice extends the comment onto the next
        // physical line (phase-2 splicing happens before comment
        // recognition, so the spliced text is still comment, not code).
        if (c == '/' && i + 1 < n && source[i + 1] == '/') {
            std::size_t start = i + 2;
            while (i < n) {
                if (source[i] == '\n') {
                    if (i > start && source[i - 1] == '\\') {
                        addComment(line,
                                   source.substr(start, i - 1 - start));
                        ++line;
                        ++i;
                        start = i;
                        continue;
                    }
                    break;
                }
                ++i;
            }
            addComment(line, source.substr(start, i - start));
            continue;
        }

        // Block comment: attach the text to every line it spans.
        if (c == '/' && i + 1 < n && source[i + 1] == '*') {
            i += 2;
            std::size_t start = i;
            int comment_line = line;
            while (i + 1 < n && !(source[i] == '*' && source[i + 1] == '/')) {
                if (source[i] == '\n') {
                    addComment(comment_line,
                               source.substr(start, i - start));
                    ++line;
                    comment_line = line;
                    start = i + 1;
                }
                ++i;
            }
            addComment(comment_line, source.substr(start, i - start));
            i = (i + 1 < n) ? i + 2 : n;
            continue;
        }

        // Raw string literal: R"delim( ... )delim", with an optional
        // encoding prefix (u8R / uR / UR / LR).
        std::size_t raw_r = std::string::npos; // index of the 'R'
        if (c == 'R' && i + 1 < n && source[i + 1] == '"') {
            raw_r = i;
        } else if (c == 'u' || c == 'U' || c == 'L') {
            std::size_t r = i + 1;
            if (c == 'u' && r < n && source[r] == '8')
                ++r;
            if (r + 1 < n && source[r] == 'R' && source[r + 1] == '"')
                raw_r = r;
        }
        if (raw_r != std::string::npos) {
            std::size_t d = raw_r + 2;
            std::string delim;
            while (d < n && source[d] != '(')
                delim += source[d++];
            std::string closer = ")" + delim + "\"";
            std::size_t end = source.find(closer, d);
            std::size_t stop = (end == std::string::npos)
                                   ? n
                                   : end + closer.size();
            for (std::size_t j = i; j < stop; ++j) {
                if (source[j] == '\n')
                    ++line;
            }
            out.tokens.push_back({TokKind::Str, "\"\"", line});
            i = stop;
            continue;
        }

        // String / char literal (content dropped; escapes honored).
        if (c == '"' || c == '\'') {
            char quote = c;
            int start_line = line;
            ++i;
            while (i < n && source[i] != quote) {
                if (source[i] == '\\' && i + 1 < n)
                    ++i;
                if (source[i] == '\n')
                    ++line;
                ++i;
            }
            if (i < n)
                ++i; // closing quote
            out.tokens.push_back({quote == '"' ? TokKind::Str : TokKind::Chr,
                                  quote == '"' ? "\"\"" : "''", start_line});
            continue;
        }

        // Identifier (string prefixes like u8"..." fall out naturally:
        // the prefix lexes as an identifier, the literal as a string).
        if (isIdentStart(c)) {
            std::size_t start = i;
            while (i < n && isIdentChar(source[i]))
                ++i;
            out.tokens.push_back(
                {TokKind::Ident, source.substr(start, i - start), line});
            continue;
        }

        // Number: integers, floats, hex, digit separators, exponents.
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && i + 1 < n &&
             std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
            std::size_t start = i;
            bool hex = (c == '0' && i + 1 < n &&
                        (source[i + 1] == 'x' || source[i + 1] == 'X'));
            while (i < n) {
                char d = source[i];
                if (isIdentChar(d) || d == '.') {
                    ++i;
                    continue;
                }
                // Digit separator: only between alphanumerics, so an
                // adjacent char literal is not swallowed.
                if (d == '\'' && i + 1 < n &&
                    std::isalnum(static_cast<unsigned char>(source[i + 1]))) {
                    ++i;
                    continue;
                }
                // Sign glued to an exponent stays part of the number.
                if ((d == '+' || d == '-') && i > start) {
                    char prev = source[i - 1];
                    bool exp = hex ? (prev == 'p' || prev == 'P')
                                   : (prev == 'e' || prev == 'E');
                    if (exp) {
                        ++i;
                        continue;
                    }
                }
                break;
            }
            std::string text = source.substr(start, i - start);
            std::string clean;
            for (char d : text) {
                if (d != '\'')
                    clean += d;
            }
            out.tokens.push_back({TokKind::Number, clean, line});
            continue;
        }

        // Punctuator: longest match from the table, else single char.
        bool matched = false;
        for (const char *p : kPuncts) {
            std::size_t len = std::char_traits<char>::length(p);
            if (source.compare(i, len, p) == 0) {
                out.tokens.push_back({TokKind::Punct, p, line});
                i += len;
                matched = true;
                break;
            }
        }
        if (!matched) {
            out.tokens.push_back({TokKind::Punct, std::string(1, c), line});
            ++i;
        }
    }
    return out;
}

} // namespace memsense::lint
