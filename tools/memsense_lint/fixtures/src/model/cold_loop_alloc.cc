// Fixture: no-hot-loop-alloc is scoped to src/sim and src/serve; the
// same per-iteration allocations in a cold layer (here src/model, a
// once-per-sweep-point solver) must not fire.
#include <string>
#include <vector>

void
coldLoops(const std::vector<int> &input)
{
    std::vector<int> grown;
    for (int v : input) {
        grown.push_back(v);
        std::string label = std::to_string(v);
        (void)label;
    }
}
