// Fixture: contract-coverage. Externally-linked model/sim functions
// taking floating-point parameters must open with a contract
// (MS_REQUIRE / requireConfig); internal-linkage helpers, integer
// functions, and reasoned allow() carriers must stay quiet.

namespace memsense::model
{

double
solveLatencyNs(double base_ns, double factor)
{
    MS_REQUIRE(base_ns >= 0.0);
    return base_ns * factor; // quiet: contracted
}

double
scaledBandwidthGBps(double raw_gbps)
{
    requireConfig(raw_gbps > 0.0, "bandwidth must be positive");
    return raw_gbps; // quiet: user-input contract counts
}

double
uncheckedBlend(double a_frac, double b) // fire 1: no opening contract
{
    return a_frac * b;
}

class PhaseModel
{
  public:
    double blendNs(double x_ns, double w_frac) // fire 2: member, no contract
    {
        return x_ns * w_frac;
    }
};

int
integerOnly(int n, long m) // quiet: no floating-point parameters
{
    return n + static_cast<int>(m);
}

static double
localHelper(double x) // quiet: internal linkage
{
    return x * 2.0;
}

// memsense-lint: allow(contract-coverage): any finite weight is valid
double documentedTotal(double weight)
{
    return localHelper(weight);
}

} // namespace memsense::model
