// Fixture: floating-point equality comparisons must be flagged.
// NOT part of the build — linted by lint_selftest only.

bool
bad(double x, double threshold)
{
    bool a = x == 0.0;          // flagged: literal on the right
    bool b = 1.5 != x;          // flagged: literal on the left
    bool c = x == threshold;    // flagged: both sides declared double
    return a || b || c;
}

bool
notFlagged(int n, int m)
{
    // Integer equality and pointer checks are fine.
    const char *p = nullptr;
    return n == m && p == nullptr && n != 7;
}
