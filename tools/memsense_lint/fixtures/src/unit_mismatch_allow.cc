// Fixture: allow() suppression for unit-mismatch — a deliberate
// cross-unit sum with a reasoned annotation must produce no findings.

namespace memsense::model
{

double
deliberateMix(double base_ns, double skew_cycles)
{
    // memsense-lint: allow(unit-mismatch): skew is pre-scaled to ns
    double total_ns = base_ns + skew_cycles;
    return total_ns;
}

} // namespace memsense::model
