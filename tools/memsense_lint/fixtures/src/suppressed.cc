// Fixture: every violation here carries an allow() annotation, so the
// linter must report nothing. NOT part of the build — lint_selftest.
#include <cstdlib>

bool
sentinelCheck(double x)
{
    // memsense-lint: allow(float-equal): exact sentinel propagated unchanged
    return x == 0.0;
}

bool
sameLineSuppression(double x)
{
    return x == 1.0; // memsense-lint: allow(float-equal): exact sentinel
}

int
seededElsewhere()
{
    // memsense-lint: allow(no-nondeterminism): fixture exercises suppression
    return rand();
}

int
multiRule(double x)
{
    // Comment block between the allow() line and the code line: the
    // suppression still reaches the next code line.
    // memsense-lint: allow(unclamped-double-to-int, float-equal): bounded by caller
    // (second comment line)
    return static_cast<int>(x);
}

// memsense-lint: allow(mutable-global-state): fixture exercises suppression
static int g_suppressed = 0;

int
use()
{
    return g_suppressed;
}
