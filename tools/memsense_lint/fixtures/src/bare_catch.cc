// Fixture: catch (...) that swallows without rethrow/record must be
// flagged (2 findings). NOT part of the build — linted by
// lint_selftest only.
#include <exception>

int
swallowAndDefault()
{
    try {
        return 1;
    } catch (...) {      // flagged: error vanishes silently
        return -1;
    }
}

void
swallowEmpty()
{
    try {
        swallowAndDefault();
    } catch (...) {      // flagged: empty handler
    }
}

void
rethrows()
{
    try {
        swallowEmpty();
    } catch (...) {      // not flagged: rethrow
        throw;
    }
}

std::exception_ptr
records()
{
    try {
        swallowEmpty();
    } catch (...) {      // not flagged: captured for the manifest
        return std::current_exception();
    }
    return nullptr;
}

int
typedHandler()
{
    try {
        return swallowAndDefault();
    } catch (const std::exception &) { // not flagged: typed catch
        return 0;
    }
}
