// Fixture: unguarded-shared-state, declaration side. Fields annotated
// guarded_by(mu) here are enforced in the sibling shared_registry.cc
// through the cross-file symbol index (same file stem).

#include <mutex>
#include <vector>

namespace memsense::serve
{

class SharedRegistry
{
  public:
    SharedRegistry();
    void add(int v);
    void addUnlocked(int v);
    void resetForTest();
    int drain();

  private:
    std::mutex mu;
    // memsense-lint: guarded_by(mu)
    std::vector<int> entries;
    // memsense-lint: guarded_by(mu)
    long total = 0;
};

} // namespace memsense::serve
