// Fixture: unguarded-shared-state, mutation side. Locked mutations
// and constructor initialization must stay quiet; the unlocked
// mutations in addUnlocked must fire (one per field).

#include "shared_registry.hh"

namespace memsense::serve
{

SharedRegistry::SharedRegistry()
{
    total = 0; // quiet: constructor of the declaring class
}

void
SharedRegistry::add(int v)
{
    std::lock_guard<std::mutex> lk(mu);
    entries.push_back(v); // quiet: lock_guard on mu is visible
    total += v;           // quiet
}

void
SharedRegistry::addUnlocked(int v)
{
    entries.push_back(v); // fire 1
    total += v;           // fire 2
}

void
SharedRegistry::resetForTest()
{
    // memsense-lint: allow(unguarded-shared-state): single-threaded hook
    total = 0;
}

int
SharedRegistry::drain()
{
    mu.lock();
    int out = static_cast<int>(total);
    entries.clear(); // quiet: explicit mu.lock() is visible
    mu.unlock();
    return out;
}

// An unrelated class whose member happens to share the name of a
// guarded field. Bare accesses inside its own methods must NOT be
// confused with SharedRegistry::total.
class ScratchTally
{
  public:
    void bump()
    {
        total += 1; // quiet: ScratchTally::total is not annotated
    }

  private:
    long total = 0;
};

} // namespace memsense::serve
