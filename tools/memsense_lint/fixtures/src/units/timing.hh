// Fixture: unit-mismatch call-argument checking, declaration side.
// Parameter names carry units; call sites in callsite.cc are checked
// against this signature through the cross-file symbol index.

namespace memsense::model
{

double applyPenalty(double base_ns, double penalty_cycles, double ghz);

} // namespace memsense::model
