// Fixture: unit-mismatch call-argument checking, call side. The
// swapped call must fire once per mismatched argument; the correct
// call must stay quiet.

#include "timing.hh"

namespace memsense::model
{

double
driver(double lat_ns, double stall_cycles, double ghz)
{
    double good = applyPenalty(lat_ns, stall_cycles, ghz); // quiet
    double bad = applyPenalty(stall_cycles, lat_ns, ghz);  // fire x2
    return good + bad;
}

} // namespace memsense::model
