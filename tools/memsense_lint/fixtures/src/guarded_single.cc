// Fixture: unguarded-shared-state with the annotation and the
// mutation in the same file — the per-file symbol table alone must
// catch it, no cross-file index required.

#include <mutex>

namespace memsense::serve
{

struct Counter
{
    std::mutex mu;
    // memsense-lint: guarded_by(mu)
    long hits = 0;

    void recordLocked(long n)
    {
        std::lock_guard<std::mutex> lk(mu);
        hits += n; // quiet
    }

    void recordRacy(long n)
    {
        hits += n; // fire
    }
};

} // namespace memsense::serve
