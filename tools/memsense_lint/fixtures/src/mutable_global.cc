// Fixture: mutable globals / static locals must be flagged.
// NOT part of the build — linted by lint_selftest only.
#include <string>

static int g_counter = 0;            // flagged: mutable global
static std::string g_last_error;     // flagged: mutable global

int
bump()
{
    static int calls = 0;            // flagged: mutable static local
    return ++calls + g_counter;
}

static const int kLimit = 8;         // not flagged: const
static constexpr double kPi = 3.14;  // not flagged: constexpr

static int
helper(int x)                        // not flagged: internal function
{
    return x + kLimit + static_cast<int>(kPi);
}

int
use()
{
    g_last_error = "x";
    return helper(1);
}
