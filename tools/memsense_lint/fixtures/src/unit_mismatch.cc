// Fixture: unit-mismatch. Cross-unit arithmetic, comparisons,
// unit-dropping assignments, and mismatched returns must fire;
// same-unit math, literals, explicit conversions, and product terms
// must stay quiet. Expected findings are numbered in the comments.

using Picos = unsigned long long;

namespace memsense::model
{

double cyclesToNs(double cycles, double ghz);
double nsToCycles(double ns, double ghz);

double
mixedArithmetic(double busy_ns, double stall_cycles, double ghz)
{
    double total_ns = busy_ns + stall_cycles;  // fire 1: ns + cycles
    double wait_cycles = stall_cycles - busy_ns; // fire 2: cycles - ns
    double same_ns = busy_ns + busy_ns;        // quiet: same unit
    double lit_ns = busy_ns + 1.5;             // quiet: literal operand
    double conv_ns = busy_ns + cyclesToNs(stall_cycles, ghz); // quiet
    double scaled_ns = busy_ns + stall_cycles * ghz; // quiet: product
    (void)wait_cycles;
    return total_ns + same_ns + lit_ns + conv_ns + scaled_ns;
}

bool
compareMixed(double busy_ns, double stall_cycles, double load_frac)
{
    if (busy_ns < stall_cycles) // fire 3: ns < cycles
        return true;
    if (load_frac > 0.9) // quiet: literal operand
        return false;
    return busy_ns >= stall_cycles; // fire 4: ns >= cycles
}

void
accumulate(double &total_ns, double stall_cycles, double extra_ns)
{
    total_ns = stall_cycles;  // fire 5: unit-dropping assignment
    total_ns += stall_cycles; // fire 6: compound cross-unit
    total_ns += extra_ns;     // quiet: same unit
}

double
waitTimeNs(double stall_cycles)
{
    return stall_cycles; // fire 7: Ns-named function returns cycles
}

double
budgetCheck(double lat_ns)
{
    Picos deadline = 125000;
    if (deadline < lat_ns) // fire 8: Picos-typed var vs ns
        return lat_ns;
    return 0.0;
}

double
pick(const double *lat_ns, const double *lat_cycles, int i)
{
    if (lat_ns[i] > lat_cycles[i]) // fire 9: subscripted operands
        return lat_ns[i];
    return lat_cycles[0]; // quiet: pick() declares no return unit
}

} // namespace memsense::model
