// Fixture: C-style casts between arithmetic types must be flagged.
// NOT part of the build — linted by lint_selftest only.
#include <cstdint>

double
bad(double x, std::uint64_t n)
{
    int a = (int)x;                    // flagged
    double d = (double)n;              // flagged
    std::uint64_t u = (std::uint64_t)x; // flagged
    return a + d + (float)u;           // flagged: after an operator
}

int
notFlagged(int n, double now)
{
    (void)now;                    // discard idiom is allowed
    int b = static_cast<int>(n);  // the explicit form is the fix
    int c = (n);                  // parenthesized expression, no cast
    return b + c + sizeof(int);   // sizeof(type) is not a cast
}
