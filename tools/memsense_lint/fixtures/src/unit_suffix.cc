// Fixture: latency/bandwidth identifiers without a unit suffix must
// be flagged. NOT part of the build — linted by lint_selftest only.

struct Point
{
    double latency = 0.0;          // flagged: ns? cycles? unknown
    double bandwidthTotal = 0.0;   // flagged: GB/s? bytes/s? unknown
    double missPenaltyNs = 0.0;    // ok: ns
    double bandwidthGBps = 0.0;    // ok: GB/s
    double queueDelayCycles = 0.0; // ok: cycles
    double latencyFactor = 1.0;    // ok: explicitly dimensionless
};

double
use(double bandwidth, double delay_ns)
{
    double qdelay = delay_ns;      // flagged: no unit in the name
    Point p;
    return bandwidth + qdelay + p.missPenaltyNs; // flagged param above
}
