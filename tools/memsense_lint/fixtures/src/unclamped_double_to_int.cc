// Fixture: double->integer static_cast without visible range control
// must be flagged. NOT part of the build — linted by lint_selftest.
#include <algorithm>
#include <cstdint>

std::int64_t
bad(double rate, double scale)
{
    auto a = static_cast<std::int64_t>(rate * scale);   // flagged
    auto b = static_cast<int>(1.3e9);                   // flagged
    return a + b;
}

std::int64_t
notFlagged(double rate, double cap, std::int64_t ticks)
{
    // Clamping in the double domain before the cast is the sanctioned
    // pattern (the PR 1 adaptive-warmup fix).
    auto a = static_cast<std::int64_t>(std::min(cap, rate));
    auto b = static_cast<std::int64_t>(std::clamp(rate, 0.0, cap));
    auto c = static_cast<std::int64_t>(std::lround(rate));
    auto d = static_cast<int>(ticks); // integer source, no UB class
    return a + b + c + d;
}
