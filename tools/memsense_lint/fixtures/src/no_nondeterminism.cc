// Fixture: every banned nondeterminism source must be flagged.
// NOT part of the build — linted by lint_selftest only.
#include <cstdlib>
#include <ctime>
#include <random>

int
pickSeed()
{
    std::random_device rd;           // flagged: entropy source
    int a = rand();                  // flagged: rand()
    srand(42);                       // flagged: srand()
    long t = time(nullptr);          // flagged: wall clock
    auto now =                       // flagged: wall clock by name
        std::chrono::steady_clock::now();
    (void)now;
    return a + static_cast<int>(t) + static_cast<int>(rd());
}

int
notFlagged(int randomish)
{
    // Identifiers merely *containing* banned words are fine, as are
    // member accesses and mentions of rand() in comments.
    int grand = randomish;
    struct S { int time; } s{3};
    return grand + s.time;
}
