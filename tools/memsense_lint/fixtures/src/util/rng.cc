// Fixture: util/rng.* is the sanctioned randomness source, so the
// no-nondeterminism rule is exempt here (and only here).
// NOT part of the build — linted by lint_selftest only.
#include <cstdlib>
#include <random>

unsigned
entropySeed()
{
    std::random_device rd; // exempt: this IS the sanctioned wrapper
    return rd() ^ static_cast<unsigned>(rand());
}
