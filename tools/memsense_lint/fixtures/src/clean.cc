// Fixture: idiomatic memsense code — zero findings expected.
// Mentions of rand() or x == 0.0 in comments and "strings with
// time(NULL) inside" must never trip a rule.
// NOT part of the build — linted by lint_selftest only.
#include <algorithm>
#include <cmath>
#include <string>

namespace memsense
{

struct Sample
{
    double latencyNs = 0.0;
    double bandwidthGBps = 0.0;
};

double
effectiveLatencyNs(const Sample &s, double queueDelayNs)
{
    const char *note = "rand() and time() belong in strings";
    (void)note;
    return s.latencyNs + queueDelayNs;
}

bool
nearlyEqual(double a, double b, double tol)
{
    return std::fabs(a - b) <= tol;
}

long
toTicks(double ns, double cap)
{
    return static_cast<long>(std::min(ns, cap));
}

int
countDown(int n)
{
    int total = 0;
    for (int i = n; i > 0; --i)
        total += i;
    return total;
}

} // namespace memsense
