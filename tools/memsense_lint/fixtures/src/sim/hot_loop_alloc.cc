// Fixture: no-hot-loop-alloc must fire on per-iteration allocations
// inside src/sim loops and stay quiet on hoisted/reserved patterns.
#include <string>
#include <vector>

void
hotLoops(const std::vector<int> &input)
{
    std::vector<int> grown;
    for (int v : input) {
        grown.push_back(v); // FIRES: growth, no visible reserve
    }

    std::size_t i = 0;
    while (i < input.size()) {
        int *leak = new int(input[i]); // FIRES: new per iteration
        delete leak;
        ++i;
    }

    for (int v : input) {
        std::string label = std::to_string(v); // FIRES twice:
        (void)label; // the declaration and the to_string() call
    }
}

void
hoistedPatterns(const std::vector<int> &input)
{
    // Reserved outside the loop, annotated with the bound: quiet.
    std::vector<int> out;
    out.reserve(input.size());
    for (int v : input) {
        // memsense-lint: allow(no-hot-loop-alloc): capacity reserved
        // to input.size() on the line above; push_back cannot grow
        out.push_back(v);
    }

    // Reused buffer, cleared per iteration: quiet.
    std::string buf;
    for (int v : input) {
        buf.clear();
        buf += static_cast<char>('0' + v % 10);
    }

    // Allocation outside any loop: quiet.
    int *once = new int(42);
    delete once;
}
