// Fixture (bench/ context): the same sweep wrapped in a PhaseTimer
// scope must stay quiet. NOT part of the build — linted by
// lint_selftest.

#include <vector>

namespace measure
{
template <typename Job, typename Fn>
std::vector<int> mapOrdered(const std::vector<Job> &inputs, Fn fn);
struct PhaseTimer
{
    explicit PhaseTimer(const char *name);
};
} // namespace measure

int
timedSweep()
{
    std::vector<int> grid = {1, 2, 3};
    measure::PhaseTimer phase("sweep");
    auto results = measure::mapOrdered(grid, [](int x) { return x; });
    return static_cast<int>(results.size());
}
