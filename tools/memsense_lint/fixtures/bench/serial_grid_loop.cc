// Fixture (bench/ context): grid loops that call the runner directly
// must be flagged. NOT part of the build — linted by lint_selftest.

namespace measure
{
struct RunConfig { double ghz = 2.7; };
int runObservation(const RunConfig &rc);
struct WorkloadRun
{
    explicit WorkloadRun(const RunConfig &rc);
    int measure();
};
} // namespace measure

int
bad()
{
    int sum = 0;
    for (double ghz : {2.1, 2.7, 3.1}) {
        measure::RunConfig rc;
        rc.ghz = ghz;
        sum += measure::runObservation(rc);    // flagged: serial sweep
        measure::WorkloadRun run(rc);          // flagged: serial sweep
        sum += run.measure();
    }
    return sum;
}

int
notFlagged()
{
    // Outside a loop a single direct run is fine (spot measurements).
    measure::RunConfig rc;
    return measure::runObservation(rc);
}
