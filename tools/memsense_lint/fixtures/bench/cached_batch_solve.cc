// Fixture (bench/ context): the same grid loop routed through the
// memoizing serve::Evaluator must stay quiet — mentioning the
// evaluator anywhere in the file satisfies the rule. NOT part of the
// build — linted by lint_selftest.

#include <vector>

namespace model
{
struct Platform
{
    double ghz = 2.0;
};
struct Point
{
    double cpiEff = 0.0;
};
} // namespace model

namespace serve
{
struct Evaluator
{
    model::Point solve(int params, const model::Platform &plat) const;
};
} // namespace serve

double
cachedGrid()
{
    serve::Evaluator eval;
    std::vector<model::Platform> grid(8);
    double sum = 0.0;
    for (const model::Platform &plat : grid)
        sum += eval.solve(3, plat).cpiEff;
    return sum;
}
