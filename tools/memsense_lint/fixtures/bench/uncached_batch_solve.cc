// Fixture (bench/ context): a driver that calls the analytic solver
// inside a hand-rolled grid loop, never mentioning the memoizing
// evaluator, must be flagged — once per file, at the first call. NOT
// part of the build — linted by lint_selftest.

#include <vector>

namespace model
{
struct Platform
{
    double ghz = 2.0;
};
struct Point
{
    double cpiEff = 0.0;
};
struct Solver
{
    Point solve(int params, const Platform &plat) const;
};
} // namespace model

double
uncachedGrid()
{
    model::Solver solver;
    std::vector<model::Platform> grid(8);
    double sum = 0.0;
    for (const model::Platform &plat : grid) {
        // flagged: every revisited operating point re-runs the fixed
        // point from scratch
        sum += solver.solve(3, plat).cpiEff;
        // NOT flagged again: the rule reports once per file
        sum += solver.solve(4, plat).cpiEff;
    }
    // NOT flagged: straight-line call outside any loop
    return sum + solver.solve(5, grid.front()).cpiEff;
}
