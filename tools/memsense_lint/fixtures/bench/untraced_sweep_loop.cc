// Fixture (bench/ context): a driver that hands a grid to the sweep
// engine without declaring any observability scope must be flagged —
// once per file, at the first sweep call. NOT part of the build —
// linted by lint_selftest.

#include <vector>

namespace measure
{
template <typename Job, typename Fn>
std::vector<int> mapOrdered(const std::vector<Job> &inputs, Fn fn);
struct FreqScalingConfig
{
    int jobs = 1;
};
int characterizeMany(const std::vector<int> &ids,
                     const FreqScalingConfig &cfg);
} // namespace measure

int
untimedSweep()
{
    std::vector<int> grid = {1, 2, 3};
    // flagged: the dominant phase of the run is invisible to --metrics
    auto results = measure::mapOrdered(grid, [](int x) { return x; });
    measure::FreqScalingConfig cfg;
    // NOT flagged again: the rule reports once per file
    return measure::characterizeMany(grid, cfg) +
           static_cast<int>(results.size());
}
