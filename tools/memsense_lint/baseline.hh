/**
 * @file
 * Finding baseline: the accepted backlog, checked into the repo.
 *
 * Entries key on (rule, file, symbol) — never on line numbers — so an
 * unrelated edit above a baselined finding does not resurrect it, and
 * moving a function within its file does not either. The cost is that
 * a second instance of the same rule inside the same symbol is also
 * absorbed; the sweep that retires a baseline entry is expected to
 * clear the whole symbol.
 *
 * The file format is a strict, minimal JSON subset written by
 * writeBaseline(); loadBaseline() refuses anything it cannot fully
 * parse. A half-read baseline silently un-suppressing (or worse,
 * suppressing everything) is a CI integrity bug, so parse failures are
 * hard errors with the offending offset.
 */

#ifndef MEMSENSE_LINT_BASELINE_HH
#define MEMSENSE_LINT_BASELINE_HH

#include <string>
#include <vector>

#include "rules.hh"

namespace memsense::lint
{

/** One accepted finding. */
struct BaselineEntry
{
    std::string rule;
    std::string file;
    std::string symbol; ///< "" = file-scope finding
};

/** A loaded baseline. */
struct Baseline
{
    std::vector<BaselineEntry> entries;

    /**
     * True when @p f matches an entry. Paths match exactly or as a
     * suffix at a '/' boundary in either direction, so a baseline
     * recorded as "src/model/solver.cc" covers a finding reported
     * against "/abs/checkout/src/model/solver.cc" and vice versa.
     */
    bool covers(const Finding &f) const;
};

/**
 * Parse @p text (from @p path, used in error messages) into a
 * Baseline. Throws std::runtime_error on any syntax the strict parser
 * does not recognize.
 */
Baseline parseBaseline(const std::string &path, const std::string &text);

/** Read and parse a baseline file. Throws if unreadable or malformed. */
Baseline loadBaseline(const std::string &path);

/** Serialize @p findings as baseline JSON (sorted, deduplicated). */
std::string writeBaseline(const std::vector<Finding> &findings);

} // namespace memsense::lint

#endif // MEMSENSE_LINT_BASELINE_HH
