/**
 * @file
 * Unit-dimension vocabulary for the semantic lint layer.
 *
 * The repo's naming convention is the only place a quantity's unit can
 * live (`latency_ns`, `mpCycles`, `bandwidthBps`, `hitFrac`): the type
 * system sees `double` everywhere. This header turns that convention
 * into a small closed vocabulary the `unit-mismatch` rule can reason
 * about. Every distinct scale is its own unit — `Ns` vs `Ms` mixups
 * are exactly as silent as `Ns` vs `Cycles` ones — and dimensionless
 * markers (`Frac`, `Ratio`, `Factor`) are a unit of their own so
 * `frac + latency_ns` still flags.
 *
 * Inference is deliberately last-word-wins over the identifier's
 * camelCase/snake_case words: `nsToCycles` names a conversion *to*
 * cycles, so both the variable and the call-result rules agree on
 * `Cycles`.
 */

#ifndef MEMSENSE_LINT_UNITS_HH
#define MEMSENSE_LINT_UNITS_HH

#include <string>
#include <vector>

namespace memsense::lint
{

/** Split an identifier into lowercased camelCase / snake_case words. */
std::vector<std::string> identWords(const std::string &name);

/** A unit dimension (each scale distinct; see file comment). */
enum class Unit
{
    Unknown,       ///< no unit information in the name
    Dimensionless, ///< Frac / Ratio / Factor / Pct / Norm / Rel
    Ns,            ///< nanoseconds
    Us,            ///< microseconds
    Ms,            ///< milliseconds
    Sec,           ///< seconds
    Ps,            ///< picoseconds (Picos)
    Cycles,        ///< core clock cycles
    Cpi,           ///< cycles per instruction (Eq. 1 quantity)
    PerInstr,      ///< events per instruction (MPI, MPKI)
    Hz,            ///< hertz
    Mhz,           ///< megahertz
    Ghz,           ///< gigahertz
    Bps,           ///< bytes per second
    MBps,          ///< megabytes per second
    GBps,          ///< gigabytes per second
    Bytes,         ///< a byte count
    KB,            ///< kilobytes
    MB,            ///< megabytes
    GB,            ///< gigabytes
};

/** Stable lower-case spelling used in diagnostics ("ns", "cycles"). */
const char *unitName(Unit u);

/**
 * Infer the unit an identifier's name declares, last unit word wins:
 * "avgMissPenaltyNs" -> Ns, "mp_cycles" -> Cycles, "nsToCycles" ->
 * Cycles, "hitFrac" -> Dimensionless, "count" -> Unknown.
 */
Unit unitFromIdentifier(const std::string &name);

/**
 * Infer the unit of a *type* spelling: the strong aliases ("Picos" ->
 * Ps, "Cycles" -> Cycles). Plain arithmetic types return Unknown.
 */
Unit unitFromTypeName(const std::string &type_name);

/**
 * True when @p name spells an explicit-conversion helper the checker
 * recognizes ("nsToCycles", "picosToNs", "bytesToGB", ...): two unit
 * words joined by "to"/"To". Conversion calls carry the unit of their
 * *target* word (which unitFromIdentifier already returns), and their
 * arguments are exempt from call-argument unit matching.
 */
bool isUnitConversionName(const std::string &name);

} // namespace memsense::lint

#endif // MEMSENSE_LINT_UNITS_HH
