/**
 * @file
 * memsense-lint CLI.
 *
 * Usage:
 *   memsense_lint [options] <file-or-dir>...
 *
 * Options:
 *   --json[=PATH]   write a JSON report to PATH (default stdout)
 *   --rules=a,b     run only the named rules
 *   --list-rules    print the rule catalog and exit
 *   --help          usage
 *
 * Exit status: 0 when no findings, 1 when findings were reported,
 * 2 on usage or I/O errors. Diagnostics print one per line as
 * "file:line: rule: message" so editors and grep can consume them.
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lint.hh"

namespace
{

void
usage(std::ostream &os)
{
    os << "usage: memsense_lint [--json[=PATH]] [--rules=a,b] "
          "[--list-rules] <file-or-dir>...\n";
}

std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace memsense::lint;

    std::vector<std::string> paths;
    LintOptions opts;
    bool want_json = false;
    std::string json_path;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else if (arg == "--list-rules") {
            for (const Rule &r : allRules())
                std::cout << r.id << ": " << r.summary << "\n";
            return 0;
        } else if (arg == "--json") {
            want_json = true;
        } else if (arg.rfind("--json=", 0) == 0) {
            want_json = true;
            json_path = arg.substr(7);
        } else if (arg.rfind("--rules=", 0) == 0) {
            opts.ruleFilter = splitCsv(arg.substr(8));
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "memsense-lint: unknown option " << arg << "\n";
            usage(std::cerr);
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty()) {
        usage(std::cerr);
        return 2;
    }

    // Unknown rule names in --rules are a usage error, not a silent
    // no-op pass.
    for (const std::string &id : opts.ruleFilter) {
        bool known = false;
        for (const Rule &r : allRules())
            known = known || r.id == id;
        if (!known) {
            std::cerr << "memsense-lint: unknown rule '" << id
                      << "' (see --list-rules)\n";
            return 2;
        }
    }

    std::size_t files_scanned = 0;
    std::vector<Finding> findings;
    try {
        findings = lintPaths(paths, opts, &files_scanned);
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 2;
    }

    for (const Finding &f : findings)
        std::cerr << formatFinding(f) << "\n";

    if (want_json) {
        std::string report = jsonReport(findings, files_scanned);
        if (json_path.empty()) {
            std::cout << report;
        } else {
            std::ofstream out(json_path);
            if (!out) {
                std::cerr << "memsense-lint: cannot write " << json_path
                          << "\n";
                return 2;
            }
            out << report;
        }
    }

    std::cerr << "memsense-lint: " << files_scanned << " files, "
              << findings.size() << " finding"
              << (findings.size() == 1 ? "" : "s") << "\n";
    return findings.empty() ? 0 : 1;
}
