/**
 * @file
 * memsense-lint CLI.
 *
 * Usage:
 *   memsense_lint [options] <file-or-dir>...
 *
 * Options:
 *   --json[=PATH]       write a JSON report to PATH (default stdout)
 *   --sarif=PATH        write a SARIF 2.1.0 report to PATH ("-" stdout)
 *   --baseline=PATH     suppress findings covered by the baseline file
 *   --write-baseline=PATH  write current findings as a new baseline
 *                          and exit 0 (suppressed entries excluded)
 *   --exclude=SUBSTR    skip files whose path contains SUBSTR
 *                       (repeatable; e.g. --exclude=fixtures)
 *   --rules=a,b         run only the named rules
 *   --list-rules        print the rule catalog and exit
 *   --help              usage
 *
 * Exit status: 0 when no (new) findings, 1 when findings were
 * reported, 2 on usage or I/O errors — including a root path that
 * exists but yields no lintable files, and a baseline file that does
 * not parse. Diagnostics print one per line as
 * "file:line: rule: message" so editors and grep can consume them.
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "baseline.hh"
#include "lint.hh"
#include "sarif.hh"

namespace
{

void
usage(std::ostream &os)
{
    os << "usage: memsense_lint [--json[=PATH]] [--sarif=PATH]\n"
          "                     [--baseline=PATH] [--write-baseline=PATH]\n"
          "                     [--exclude=SUBSTR]... [--rules=a,b]\n"
          "                     [--list-rules] <file-or-dir>...\n";
}

std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

bool
writeTextFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << text;
    return true;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace memsense::lint;

    std::vector<std::string> paths;
    LintOptions opts;
    bool want_json = false;
    std::string json_path;
    std::string sarif_path;
    std::string baseline_path;
    std::string write_baseline_path;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else if (arg == "--list-rules") {
            for (const Rule &r : allRules())
                std::cout << r.id << ": " << r.summary << "\n";
            return 0;
        } else if (arg == "--json") {
            want_json = true;
        } else if (arg.rfind("--json=", 0) == 0) {
            want_json = true;
            json_path = arg.substr(7);
        } else if (arg.rfind("--sarif=", 0) == 0) {
            sarif_path = arg.substr(8);
        } else if (arg.rfind("--baseline=", 0) == 0) {
            baseline_path = arg.substr(11);
        } else if (arg.rfind("--write-baseline=", 0) == 0) {
            write_baseline_path = arg.substr(17);
        } else if (arg.rfind("--exclude=", 0) == 0) {
            opts.excludes.push_back(arg.substr(10));
        } else if (arg.rfind("--rules=", 0) == 0) {
            opts.ruleFilter = splitCsv(arg.substr(8));
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "memsense-lint: unknown option " << arg << "\n";
            usage(std::cerr);
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty()) {
        usage(std::cerr);
        return 2;
    }

    // Unknown rule names in --rules are a usage error, not a silent
    // no-op pass.
    for (const std::string &id : opts.ruleFilter) {
        bool known = false;
        for (const Rule &r : allRules())
            known = known || r.id == id;
        if (!known) {
            std::cerr << "memsense-lint: unknown rule '" << id
                      << "' (see --list-rules)\n";
            return 2;
        }
    }

    // Load the baseline before scanning: a malformed baseline must
    // fail fast, not after a long lint pass.
    Baseline baseline;
    bool have_baseline = false;
    if (!baseline_path.empty()) {
        try {
            baseline = loadBaseline(baseline_path);
            have_baseline = true;
        } catch (const std::exception &e) {
            std::cerr << e.what() << "\n";
            return 2;
        }
    }

    std::size_t files_scanned = 0;
    std::vector<Finding> findings;
    try {
        findings = lintPaths(paths, opts, &files_scanned);
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 2;
    }

    if (!write_baseline_path.empty()) {
        if (!writeTextFile(write_baseline_path, writeBaseline(findings))) {
            std::cerr << "memsense-lint: cannot write "
                      << write_baseline_path << "\n";
            return 2;
        }
        std::cerr << "memsense-lint: baselined " << findings.size()
                  << " finding" << (findings.size() == 1 ? "" : "s")
                  << " across " << files_scanned << " files into "
                  << write_baseline_path << "\n";
        return 0;
    }

    std::size_t baselined = 0;
    if (have_baseline) {
        std::vector<Finding> fresh;
        for (Finding &f : findings) {
            if (baseline.covers(f))
                ++baselined;
            else
                fresh.push_back(std::move(f));
        }
        findings = std::move(fresh);
    }

    for (const Finding &f : findings)
        std::cerr << formatFinding(f) << "\n";

    if (want_json) {
        std::string report = jsonReport(findings, files_scanned);
        if (json_path.empty()) {
            std::cout << report;
        } else if (!writeTextFile(json_path, report)) {
            std::cerr << "memsense-lint: cannot write " << json_path
                      << "\n";
            return 2;
        }
    }
    if (!sarif_path.empty()) {
        std::string report = sarifReport(findings);
        if (sarif_path == "-") {
            std::cout << report;
        } else if (!writeTextFile(sarif_path, report)) {
            std::cerr << "memsense-lint: cannot write " << sarif_path
                      << "\n";
            return 2;
        }
    }

    std::cerr << "memsense-lint: " << files_scanned << " files, "
              << findings.size() << " finding"
              << (findings.size() == 1 ? "" : "s");
    if (baselined > 0)
        std::cerr << " (" << baselined << " baselined)";
    std::cerr << "\n";
    return findings.empty() ? 0 : 1;
}
