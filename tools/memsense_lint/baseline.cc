#include "baseline.hh"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <tuple>

#include "lint.hh"

namespace memsense::lint
{

namespace
{

/**
 * Strict recursive-descent reader for the baseline's JSON subset:
 * objects, arrays, and double-quoted strings with \" \\ \n \t \uXXXX
 * escapes. No numbers, booleans, or nulls — the format never emits
 * them, so the parser rejects them.
 */
class Parser
{
  public:
    Parser(const std::string &path, const std::string &text)
        : path_(path), text_(text)
    {
    }

    Baseline parse()
    {
        Baseline b;
        expect('{');
        expectKey("entries");
        expect('[');
        skipWs();
        if (peek() != ']') {
            for (;;) {
                b.entries.push_back(parseEntry());
                skipWs();
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                break;
            }
        }
        expect(']');
        expect('}');
        skipWs();
        if (pos_ != text_.size())
            fail("trailing content after closing '}'");
        return b;
    }

  private:
    [[noreturn]] void fail(const std::string &why) const
    {
        throw std::runtime_error("memsense-lint: baseline " + path_ +
                                 ": parse error at offset " +
                                 std::to_string(pos_) + ": " + why);
    }

    char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    void expect(char c)
    {
        skipWs();
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    void expectKey(const std::string &key)
    {
        if (parseString() != key)
            fail("expected key \"" + key + "\"");
        expect(':');
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case 'n':
                out += '\n';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned v = 0;
                for (int k = 0; k < 4; ++k) {
                    char h = text_[pos_++];
                    v <<= 4;
                    if (h >= '0' && h <= '9')
                        v |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        v |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        v |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad hex digit in \\u escape");
                }
                if (v > 0x7f)
                    fail("non-ASCII \\u escape not supported");
                out += static_cast<char>(v);
                break;
              }
              default:
                fail(std::string("unknown escape '\\") + e + "'");
            }
        }
        if (pos_ >= text_.size())
            fail("unterminated string");
        ++pos_; // closing quote
        return out;
    }

    BaselineEntry parseEntry()
    {
        BaselineEntry e;
        expect('{');
        bool saw_rule = false, saw_file = false, saw_symbol = false;
        for (;;) {
            skipWs();
            std::string key = parseString();
            expect(':');
            skipWs();
            std::string value = parseString();
            if (key == "rule") {
                e.rule = value;
                saw_rule = true;
            } else if (key == "file") {
                e.file = value;
                saw_file = true;
            } else if (key == "symbol") {
                e.symbol = value;
                saw_symbol = true;
            } else {
                fail("unknown entry key \"" + key + "\"");
            }
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            break;
        }
        expect('}');
        if (!saw_rule || !saw_file || !saw_symbol)
            fail("entry must have rule, file, and symbol keys");
        return e;
    }

    std::string path_;
    std::string text_;
    std::size_t pos_ = 0;
};

/** Exact match, or suffix at a '/' boundary in either direction. */
bool
pathMatches(const std::string &a, const std::string &b)
{
    if (a == b)
        return true;
    auto suffix_at_slash = [](const std::string &longer,
                              const std::string &shorter) {
        if (longer.size() <= shorter.size())
            return false;
        return longer.compare(longer.size() - shorter.size(),
                              shorter.size(), shorter) == 0 &&
               longer[longer.size() - shorter.size() - 1] == '/';
    };
    return suffix_at_slash(a, b) || suffix_at_slash(b, a);
}

} // anonymous namespace

bool
Baseline::covers(const Finding &f) const
{
    for (const BaselineEntry &e : entries) {
        if (e.rule == f.rule && e.symbol == f.symbol &&
            pathMatches(f.file, e.file))
            return true;
    }
    return false;
}

Baseline
parseBaseline(const std::string &path, const std::string &text)
{
    return Parser(path, text).parse();
}

Baseline
loadBaseline(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error(
            "memsense-lint: cannot read baseline file " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return parseBaseline(path, ss.str());
}

std::string
writeBaseline(const std::vector<Finding> &findings)
{
    std::vector<BaselineEntry> entries;
    entries.reserve(findings.size());
    for (const Finding &f : findings)
        entries.push_back({f.rule, f.file, f.symbol});
    auto key = [](const BaselineEntry &e) {
        return std::tie(e.rule, e.file, e.symbol);
    };
    std::sort(entries.begin(), entries.end(),
              [&key](const BaselineEntry &a, const BaselineEntry &b) {
                  return key(a) < key(b);
              });
    entries.erase(std::unique(entries.begin(), entries.end(),
                              [&key](const BaselineEntry &a,
                                     const BaselineEntry &b) {
                                  return key(a) == key(b);
                              }),
                  entries.end());

    std::ostringstream os;
    os << "{\n  \"entries\": [";
    bool first = true;
    for (const BaselineEntry &e : entries) {
        os << (first ? "" : ",") << "\n    {\"rule\": \""
           << jsonEscaped(e.rule) << "\", \"file\": \""
           << jsonEscaped(e.file) << "\", \"symbol\": \""
           << jsonEscaped(e.symbol) << "\"}";
        first = false;
    }
    os << (entries.empty() ? "" : "\n  ") << "]\n}\n";
    return os.str();
}

} // namespace memsense::lint
