#include "units.hh"

#include <cctype>
#include <map>

namespace memsense::lint
{

std::vector<std::string>
identWords(const std::string &name)
{
    std::vector<std::string> words;
    std::string cur;
    for (std::size_t i = 0; i < name.size(); ++i) {
        char c = name[i];
        if (c == '_') {
            if (!cur.empty())
                words.push_back(cur);
            cur.clear();
            continue;
        }
        bool upper = std::isupper(static_cast<unsigned char>(c)) != 0;
        if (upper && !cur.empty()) {
            char prev = name[i - 1];
            bool prev_lower =
                std::islower(static_cast<unsigned char>(prev)) != 0 ||
                std::isdigit(static_cast<unsigned char>(prev)) != 0;
            bool next_lower =
                i + 1 < name.size() &&
                std::islower(static_cast<unsigned char>(name[i + 1])) != 0;
            // New word at lower->Upper, and at the last upper of an
            // acronym run ("GBps" -> "g", "bps").
            if (prev_lower || (!prev_lower && next_lower)) {
                words.push_back(cur);
                cur.clear();
            }
        }
        cur += static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    }
    if (!cur.empty())
        words.push_back(cur);
    return words;
}

namespace
{

/** Lowercased word -> the unit it declares. */
const std::map<std::string, Unit> &
unitWords()
{
    static const std::map<std::string, Unit> words = {
        {"ns", Unit::Ns},
        {"nanos", Unit::Ns},
        {"us", Unit::Us},
        {"micros", Unit::Us},
        {"ms", Unit::Ms},
        {"millis", Unit::Ms},
        {"sec", Unit::Sec},
        {"secs", Unit::Sec},
        {"seconds", Unit::Sec},
        {"ps", Unit::Ps},
        {"picos", Unit::Ps},
        {"cycle", Unit::Cycles},
        {"cycles", Unit::Cycles},
        {"cyc", Unit::Cycles},
        {"cpi", Unit::Cpi},
        {"mpki", Unit::PerInstr},
        {"hz", Unit::Hz},
        {"mhz", Unit::Mhz},
        {"ghz", Unit::Ghz},
        {"bps", Unit::Bps},
        {"mbps", Unit::MBps},
        {"gbps", Unit::GBps},
        {"byte", Unit::Bytes},
        {"bytes", Unit::Bytes},
        {"kb", Unit::KB},
        {"mb", Unit::MB},
        {"gb", Unit::GB},
        {"frac", Unit::Dimensionless},
        {"fraction", Unit::Dimensionless},
        {"ratio", Unit::Dimensionless},
        {"factor", Unit::Dimensionless},
        {"pct", Unit::Dimensionless},
        {"percent", Unit::Dimensionless},
        {"norm", Unit::Dimensionless},
        {"rel", Unit::Dimensionless},
        {"relative", Unit::Dimensionless},
    };
    return words;
}

} // anonymous namespace

const char *
unitName(Unit u)
{
    switch (u) {
      case Unit::Unknown:
        return "?";
      case Unit::Dimensionless:
        return "dimensionless";
      case Unit::Ns:
        return "ns";
      case Unit::Us:
        return "us";
      case Unit::Ms:
        return "ms";
      case Unit::Sec:
        return "s";
      case Unit::Ps:
        return "ps";
      case Unit::Cycles:
        return "cycles";
      case Unit::Cpi:
        return "cycles/instr";
      case Unit::PerInstr:
        return "events/instr";
      case Unit::Hz:
        return "Hz";
      case Unit::Mhz:
        return "MHz";
      case Unit::Ghz:
        return "GHz";
      case Unit::Bps:
        return "bytes/s";
      case Unit::MBps:
        return "MB/s";
      case Unit::GBps:
        return "GB/s";
      case Unit::Bytes:
        return "bytes";
      case Unit::KB:
        return "KB";
      case Unit::MB:
        return "MB";
      case Unit::GB:
        return "GB";
    }
    return "?";
}

Unit
unitFromIdentifier(const std::string &name)
{
    const std::vector<std::string> words = identWords(name);
    // Last unit word wins so conversion names ("nsToCycles") resolve
    // to their target, and "PerInstr" is recognized as a word pair.
    auto is_seconds = [](const std::string &w) {
        return w == "sec" || w == "secs" || w == "second" ||
               w == "seconds" || w == "s";
    };
    for (std::size_t i = words.size(); i-- > 0;) {
        if (words[i] == "instr" && i > 0 && words[i - 1] == "per")
            return Unit::PerInstr;
        // "<size> per sec" spellings are rates: bytes_per_sec -> Bps,
        // mbPerSecond -> MBps, gb_per_s -> GBps.
        if (is_seconds(words[i]) && i >= 2 && words[i - 1] == "per") {
            const std::string &base = words[i - 2];
            if (base == "byte" || base == "bytes")
                return Unit::Bps;
            if (base == "kb" || base == "mb")
                return Unit::MBps;
            if (base == "gb")
                return Unit::GBps;
        }
        // CamelCase "GBps"/"MBps" split into "g"/"m" + "bps"; rejoin
        // the scale prefix so they do not collapse to plain Bps.
        if (words[i] == "bps" && i > 0) {
            if (words[i - 1] == "g")
                return Unit::GBps;
            if (words[i - 1] == "m")
                return Unit::MBps;
        }
        auto it = unitWords().find(words[i]);
        if (it != unitWords().end())
            return it->second;
    }
    return Unit::Unknown;
}

Unit
unitFromTypeName(const std::string &type_name)
{
    if (type_name == "Picos")
        return Unit::Ps;
    if (type_name == "Cycles")
        return Unit::Cycles;
    return Unit::Unknown;
}

bool
isUnitConversionName(const std::string &name)
{
    const std::vector<std::string> words = identWords(name);
    if (words.size() < 3)
        return false;
    for (std::size_t i = 0; i + 2 < words.size(); ++i) {
        if (words[i + 1] == "to" && unitWords().count(words[i]) != 0 &&
            unitWords().count(words[i + 2]) != 0)
            return true;
    }
    return false;
}

} // namespace memsense::lint
