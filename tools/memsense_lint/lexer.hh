/**
 * @file
 * Minimal C++ tokenizer for memsense-lint.
 *
 * The linter works on a token stream, not an AST: no libclang, no
 * preprocessor, no type system. The lexer's only jobs are to split
 * source text into identifiers / numbers / literals / punctuators
 * with line numbers attached, to drop comment and string *content*
 * so rules never match inside it, and to record per-line comment
 * text so suppressions (`// memsense-lint: allow(<rule>)`) can be
 * resolved later.
 */

#ifndef MEMSENSE_LINT_LEXER_HH
#define MEMSENSE_LINT_LEXER_HH

#include <map>
#include <string>
#include <vector>

namespace memsense::lint
{

/** Lexical class of a token. */
enum class TokKind
{
    Ident,  ///< identifier or keyword
    Number, ///< numeric literal (integer or floating)
    Str,    ///< string literal (content dropped, text is "\"\"")
    Chr,    ///< character literal (content dropped)
    Punct,  ///< operator or punctuator, longest-match (e.g. "==", "::")
};

/** One token with its source position. */
struct Token
{
    TokKind kind;     ///< lexical class
    std::string text; ///< token spelling (literals are blanked)
    int line;         ///< 1-based source line
};

/** Tokenizer output: the stream plus per-line comment text. */
struct LexResult
{
    std::vector<Token> tokens;          ///< comment/whitespace-free stream
    std::map<int, std::string> comments; ///< line -> comment text on it
};

/**
 * Tokenize C++ source text.
 *
 * Handles line/block comments, string/char literals (including raw
 * strings and common prefixes/suffixes), digit separators, and line
 * continuations. Unterminated constructs are closed at end of input
 * rather than reported; the linter is not a compiler.
 */
LexResult tokenize(const std::string &source);

/** True if a Number token spells a floating-point literal. */
bool isFloatLiteral(const std::string &text);

} // namespace memsense::lint

#endif // MEMSENSE_LINT_LEXER_HH
