#include "lint.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace memsense::lint
{

namespace
{

/**
 * Parse rule ids out of a "memsense-lint: allow(a, b)" comment.
 * Returns empty when the comment carries no suppression.
 */
std::vector<std::string>
parseAllows(const std::string &comment)
{
    std::vector<std::string> ids;
    std::size_t tag = comment.find("memsense-lint:");
    if (tag == std::string::npos)
        return ids;
    std::size_t open = comment.find("allow(", tag);
    if (open == std::string::npos)
        return ids;
    std::size_t close = comment.find(')', open);
    if (close == std::string::npos)
        return ids;
    std::string list = comment.substr(open + 6, close - open - 6);
    std::string cur;
    for (char c : list) {
        if (c == ',') {
            if (!cur.empty())
                ids.push_back(cur);
            cur.clear();
        } else if (!std::isspace(static_cast<unsigned char>(c))) {
            cur += c;
        }
    }
    if (!cur.empty())
        ids.push_back(cur);
    return ids;
}

/**
 * True when @p f is covered by an allow() on its own line, or on an
 * adjacent comment-only line above it (a comment line suppresses the
 * code line it introduces, hopping over intervening comment lines).
 */
bool
suppressed(const Finding &f, const FileContext &ctx)
{
    auto allows_on = [&ctx](int line) {
        auto it = ctx.comments.find(line);
        if (it == ctx.comments.end())
            return std::vector<std::string>();
        return parseAllows(it->second);
    };
    auto line_has_code = [&ctx](int line) {
        return std::any_of(ctx.toks.begin(), ctx.toks.end(),
                           [line](const Token &t) {
                               return t.line == line;
                           });
    };
    for (int line = f.line; line >= 1; --line) {
        if (line != f.line && line_has_code(line))
            break; // a code line above ends the comment block
        for (const std::string &id : allows_on(line)) {
            if (id == f.rule)
                return true;
        }
        if (line != f.line && ctx.comments.find(line) == ctx.comments.end())
            break; // blank line ends the comment block
    }
    return false;
}

void
jsonEscape(std::ostream &os, const std::string &s)
{
    for (char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                os << buf;
            } else {
                os << c;
            }
        }
    }
}

bool
lintableExtension(const std::filesystem::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".h" || ext == ".cpp" ||
           ext == ".hpp";
}

std::string
readFileOrThrow(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("memsense-lint: cannot read " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

bool
excluded(const std::string &path, const LintOptions &opts)
{
    for (const std::string &sub : opts.excludes) {
        if (!sub.empty() && path.find(sub) != std::string::npos)
            return true;
    }
    return false;
}

} // anonymous namespace

std::vector<Finding>
lintSource(const std::string &path, const std::string &source,
           const LintOptions &opts, const SymbolIndex *index)
{
    FileContext ctx = makeContext(path, tokenize(source), index);
    std::vector<Finding> raw;
    for (const Rule &rule : allRules()) {
        if (!opts.ruleFilter.empty() &&
            std::find(opts.ruleFilter.begin(), opts.ruleFilter.end(),
                      rule.id) == opts.ruleFilter.end())
            continue;
        rule.check(ctx, raw);
    }
    std::vector<Finding> out;
    for (Finding &f : raw) {
        if (suppressed(f, ctx))
            continue;
        // Attribute to the enclosing function so baseline entries key
        // on a stable symbol, not a drifting line number.
        if (f.symbol.empty()) {
            const FunctionDecl *fn = ctx.syms.enclosingLine(f.line);
            if (fn)
                f.symbol = fn->qualified;
        }
        out.push_back(std::move(f));
    }
    std::sort(out.begin(), out.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    return out;
}

std::vector<Finding>
lintFile(const std::string &path, const LintOptions &opts,
         const SymbolIndex *index)
{
    return lintSource(path, readFileOrThrow(path), opts, index);
}

std::vector<Finding>
lintPaths(const std::vector<std::string> &paths, const LintOptions &opts,
          std::size_t *files_scanned)
{
    namespace fs = std::filesystem;
    std::vector<std::string> files;
    for (const std::string &p : paths) {
        std::size_t before = files.size();
        if (fs::is_directory(p)) {
            for (const auto &entry : fs::recursive_directory_iterator(p)) {
                if (entry.is_regular_file() &&
                    lintableExtension(entry.path()) &&
                    !excluded(entry.path().generic_string(), opts))
                    files.push_back(entry.path().generic_string());
            }
        } else if (fs::is_regular_file(p)) {
            if (!excluded(p, opts))
                files.push_back(p);
        } else {
            throw std::runtime_error(
                "memsense-lint: path does not exist (or is not a file or "
                "directory): " + p);
        }
        if (files.size() == before)
            throw std::runtime_error(
                "memsense-lint: no lintable files (*.cc/.hh/.h/.cpp/.hpp) "
                "under " + p +
                "; a root that scans nothing would pass vacuously, so it "
                "is an error (check the path and --exclude patterns)");
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    // Pass 1: scan every file into the cross-file symbol index.
    SymbolIndex index;
    std::vector<std::string> sources;
    sources.reserve(files.size());
    for (const std::string &file : files) {
        sources.push_back(readFileOrThrow(file));
        index.merge(file, scanSymbols(tokenize(sources.back())));
    }

    // Pass 2: rules, with the whole tree's declarations in scope.
    std::vector<Finding> out;
    for (std::size_t i = 0; i < files.size(); ++i) {
        std::vector<Finding> per_file =
            lintSource(files[i], sources[i], opts, &index);
        out.insert(out.end(), per_file.begin(), per_file.end());
    }
    if (files_scanned)
        *files_scanned = files.size();
    return out;
}

std::string
formatFinding(const Finding &f)
{
    return f.file + ":" + std::to_string(f.line) + ": " + f.rule + ": " +
           f.message;
}

std::string
jsonReport(const std::vector<Finding> &findings, std::size_t files_scanned)
{
    std::map<std::string, int> counts;
    for (const Finding &f : findings)
        ++counts[f.rule];

    std::ostringstream os;
    os << "{\n  \"filesScanned\": " << files_scanned << ",\n"
       << "  \"findingCount\": " << findings.size() << ",\n"
       << "  \"counts\": {";
    bool first = true;
    for (const auto &[rule, count] : counts) {
        os << (first ? "" : ",") << "\n    \"";
        jsonEscape(os, rule);
        os << "\": " << count;
        first = false;
    }
    os << (counts.empty() ? "" : "\n  ") << "},\n  \"findings\": [";
    first = true;
    for (const Finding &f : findings) {
        os << (first ? "" : ",") << "\n    {\"file\": \"";
        jsonEscape(os, f.file);
        os << "\", \"line\": " << f.line << ", \"rule\": \"";
        jsonEscape(os, f.rule);
        os << "\", \"symbol\": \"";
        jsonEscape(os, f.symbol);
        os << "\", \"message\": \"";
        jsonEscape(os, f.message);
        os << "\"}";
        first = false;
    }
    os << (findings.empty() ? "" : "\n  ") << "]\n}\n";
    return os.str();
}

std::string
jsonEscaped(const std::string &s)
{
    std::ostringstream os;
    jsonEscape(os, s);
    return os.str();
}

} // namespace memsense::lint
