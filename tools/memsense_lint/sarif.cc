#include "sarif.hh"

#include <map>
#include <sstream>

#include "lint.hh"

namespace memsense::lint
{

std::string
sarifReport(const std::vector<Finding> &findings)
{
    const std::vector<Rule> &rules = allRules();
    std::map<std::string, std::size_t> rule_index;
    for (std::size_t i = 0; i < rules.size(); ++i)
        rule_index[rules[i].id] = i;

    std::ostringstream os;
    os << "{\n"
       << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json"
          "\",\n"
       << "  \"version\": \"2.1.0\",\n"
       << "  \"runs\": [\n"
       << "    {\n"
       << "      \"tool\": {\n"
       << "        \"driver\": {\n"
       << "          \"name\": \"memsense-lint\",\n"
       << "          \"informationUri\": \"docs/static_analysis.md\",\n"
       << "          \"rules\": [";
    bool first = true;
    for (const Rule &r : rules) {
        os << (first ? "" : ",") << "\n            {\"id\": \""
           << jsonEscaped(r.id) << "\", \"shortDescription\": {\"text\": \""
           << jsonEscaped(r.summary) << "\"}}";
        first = false;
    }
    os << "\n          ]\n"
       << "        }\n"
       << "      },\n"
       << "      \"results\": [";
    first = true;
    for (const Finding &f : findings) {
        os << (first ? "" : ",") << "\n        {\n"
           << "          \"ruleId\": \"" << jsonEscaped(f.rule) << "\",\n";
        auto it = rule_index.find(f.rule);
        if (it != rule_index.end())
            os << "          \"ruleIndex\": " << it->second << ",\n";
        os << "          \"level\": \"warning\",\n"
           << "          \"message\": {\"text\": \""
           << jsonEscaped(f.message) << "\"},\n"
           << "          \"locations\": [\n"
           << "            {\n"
           << "              \"physicalLocation\": {\n"
           << "                \"artifactLocation\": {\"uri\": \""
           << jsonEscaped(f.file) << "\"},\n"
           << "                \"region\": {\"startLine\": "
           << (f.line > 0 ? f.line : 1) << "}\n"
           << "              }";
        if (!f.symbol.empty())
            os << ",\n              \"logicalLocations\": [{\"name\": \""
               << jsonEscaped(f.symbol)
               << "\", \"kind\": \"function\"}]";
        os << "\n            }\n"
           << "          ]\n"
           << "        }";
        first = false;
    }
    os << (findings.empty() ? "" : "\n      ") << "]\n"
       << "    }\n"
       << "  ]\n"
       << "}\n";
    return os.str();
}

} // namespace memsense::lint
