/**
 * @file
 * memsense-lint driver: file discovery, suppression handling, and
 * report formatting on top of the rule catalog in rules.hh.
 *
 * Tree analysis is two-pass: every discovered file is scanned into the
 * SymbolIndex first, then each file is linted with the merged index in
 * scope, so cross-file rules (unit-mismatch call checks, guarded_by
 * annotations declared in a sibling header) see the whole tree.
 */

#ifndef MEMSENSE_LINT_LINT_HH
#define MEMSENSE_LINT_LINT_HH

#include <string>
#include <vector>

#include "rules.hh"

namespace memsense::lint
{

/** Driver options. */
struct LintOptions
{
    /** When non-empty, only these rule ids run. */
    std::vector<std::string> ruleFilter;
    /** Paths containing any of these substrings are skipped. */
    std::vector<std::string> excludes;
};

/** Lint one in-memory source (the selftest entry point). */
std::vector<Finding> lintSource(const std::string &path,
                                const std::string &source,
                                const LintOptions &opts = {},
                                const SymbolIndex *index = nullptr);

/** Lint one file on disk. Throws std::runtime_error if unreadable. */
std::vector<Finding> lintFile(const std::string &path,
                              const LintOptions &opts = {},
                              const SymbolIndex *index = nullptr);

/**
 * Lint files and directory trees (recursing into *.cc/.hh/.h/.cpp/.hpp,
 * deterministic order). @p files_scanned, when non-null, receives the
 * number of files visited.
 *
 * Throws std::runtime_error when a root does not exist or contributes
 * no lintable files — a silent "0 files, 0 findings" pass from a typo'd
 * path is indistinguishable from a clean tree, so it is an error.
 */
std::vector<Finding> lintPaths(const std::vector<std::string> &paths,
                               const LintOptions &opts = {},
                               std::size_t *files_scanned = nullptr);

/** "file:line: rule: message" — the grep-able diagnostic line. */
std::string formatFinding(const Finding &f);

/** Machine-readable JSON report (findings, per-rule counts, file count). */
std::string jsonReport(const std::vector<Finding> &findings,
                       std::size_t files_scanned);

/** JSON string-escape @p s (shared by the JSON/SARIF/baseline writers). */
std::string jsonEscaped(const std::string &s);

} // namespace memsense::lint

#endif // MEMSENSE_LINT_LINT_HH
