/**
 * @file
 * memsense-lint driver: file discovery, suppression handling, and
 * report formatting on top of the rule catalog in rules.hh.
 */

#ifndef MEMSENSE_LINT_LINT_HH
#define MEMSENSE_LINT_LINT_HH

#include <string>
#include <vector>

#include "rules.hh"

namespace memsense::lint
{

/** Driver options. */
struct LintOptions
{
    /** When non-empty, only these rule ids run. */
    std::vector<std::string> ruleFilter;
};

/** Lint one in-memory source (the selftest entry point). */
std::vector<Finding> lintSource(const std::string &path,
                                const std::string &source,
                                const LintOptions &opts = {});

/** Lint one file on disk. Throws std::runtime_error if unreadable. */
std::vector<Finding> lintFile(const std::string &path,
                              const LintOptions &opts = {});

/**
 * Lint files and directory trees (recursing into *.cc/.hh/.h/.cpp/.hpp,
 * deterministic order). @p files_scanned, when non-null, receives the
 * number of files visited.
 */
std::vector<Finding> lintPaths(const std::vector<std::string> &paths,
                               const LintOptions &opts = {},
                               std::size_t *files_scanned = nullptr);

/** "file:line: rule: message" — the grep-able diagnostic line. */
std::string formatFinding(const Finding &f);

/** Machine-readable JSON report (findings, per-rule counts, file count). */
std::string jsonReport(const std::vector<Finding> &findings,
                       std::size_t files_scanned);

} // namespace memsense::lint

#endif // MEMSENSE_LINT_LINT_HH
