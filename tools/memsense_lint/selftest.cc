/**
 * @file
 * Rule-by-rule selftest for memsense-lint.
 *
 * Each rule has a fixture source asserting it fires at the expected
 * sites, plus negative fixtures (suppressions, the util/rng
 * exemption, and an idiomatic clean file) asserting it stays quiet.
 * Fixtures are real files under fixtures/ — never compiled, only
 * linted — so the corpus also documents what each rule means.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "baseline.hh"
#include "lexer.hh"
#include "lint.hh"
#include "sarif.hh"

namespace
{

using memsense::lint::Baseline;
using memsense::lint::Finding;
using memsense::lint::formatFinding;
using memsense::lint::LintOptions;
using memsense::lint::lintFile;
using memsense::lint::lintPaths;
using memsense::lint::parseBaseline;
using memsense::lint::TokKind;
using memsense::lint::tokenize;

std::string
fixture(const std::string &rel)
{
    return std::string(MEMSENSE_LINT_FIXTURE_DIR) + "/" + rel;
}

/** Findings for one fixture with only @p rule enabled. */
std::vector<Finding>
runRule(const std::string &rel, const std::string &rule)
{
    LintOptions opts;
    opts.ruleFilter = {rule};
    return lintFile(fixture(rel), opts);
}

int
countRule(const std::vector<Finding> &findings, const std::string &rule)
{
    return static_cast<int>(
        std::count_if(findings.begin(), findings.end(),
                      [&rule](const Finding &f) { return f.rule == rule; }));
}

TEST(LintSelftest, NoNondeterminismFires)
{
    auto fs = runRule("src/no_nondeterminism.cc", "no-nondeterminism");
    EXPECT_EQ(countRule(fs, "no-nondeterminism"), 5)
        << "random_device, rand, srand, time, steady_clock";
}

TEST(LintSelftest, FloatEqualFires)
{
    auto fs = runRule("src/float_equal.cc", "float-equal");
    EXPECT_EQ(countRule(fs, "float-equal"), 3);
}

TEST(LintSelftest, CStyleCastFires)
{
    auto fs = runRule("src/c_style_cast.cc", "c-style-cast");
    EXPECT_EQ(countRule(fs, "c-style-cast"), 4);
}

TEST(LintSelftest, UnclampedDoubleToIntFires)
{
    auto fs =
        runRule("src/unclamped_double_to_int.cc", "unclamped-double-to-int");
    EXPECT_EQ(countRule(fs, "unclamped-double-to-int"), 2)
        << "the clamped/lround/integer-source casts must not fire";
}

TEST(LintSelftest, MutableGlobalStateFires)
{
    auto fs = runRule("src/mutable_global.cc", "mutable-global-state");
    EXPECT_EQ(countRule(fs, "mutable-global-state"), 3)
        << "two globals and one static local; const/constexpr/functions "
           "must not fire";
}

TEST(LintSelftest, SerialGridLoopFiresInBench)
{
    auto fs = runRule("bench/serial_grid_loop.cc", "serial-grid-loop");
    EXPECT_EQ(countRule(fs, "serial-grid-loop"), 2)
        << "runObservation and WorkloadRun inside the loop; the "
           "straight-line call must not fire";
}

TEST(LintSelftest, UntracedSweepLoopFiresOncePerFile)
{
    auto fs = runRule("bench/untraced_sweep_loop.cc",
                      "no-untraced-sweep-loop");
    EXPECT_EQ(countRule(fs, "no-untraced-sweep-loop"), 1)
        << "advisory: one finding per file, at the first sweep call";
}

TEST(LintSelftest, TracedSweepLoopStaysQuiet)
{
    auto fs = runRule("bench/traced_sweep_loop.cc",
                      "no-untraced-sweep-loop");
    EXPECT_EQ(countRule(fs, "no-untraced-sweep-loop"), 0)
        << "a PhaseTimer scope anywhere in the file satisfies the rule";
}

TEST(LintSelftest, UncachedBatchSolveFiresOncePerFile)
{
    auto fs = runRule("bench/uncached_batch_solve.cc",
                      "no-uncached-batch-solve");
    EXPECT_EQ(countRule(fs, "no-uncached-batch-solve"), 1)
        << "advisory: one finding per file, at the first in-loop "
           "solve(); the straight-line call must not fire";
}

TEST(LintSelftest, CachedBatchSolveStaysQuiet)
{
    auto fs = runRule("bench/cached_batch_solve.cc",
                      "no-uncached-batch-solve");
    EXPECT_EQ(countRule(fs, "no-uncached-batch-solve"), 0)
        << "mentioning the memoizing Evaluator anywhere in the file "
           "satisfies the rule";
}

TEST(LintSelftest, HotLoopAllocFires)
{
    auto fs = runRule("src/sim/hot_loop_alloc.cc", "no-hot-loop-alloc");
    EXPECT_EQ(countRule(fs, "no-hot-loop-alloc"), 4)
        << "unreserved push_back, new-per-iteration, string decl, "
           "to_string; the reserved/reused/straight-line patterns "
           "must not fire";
}

TEST(LintSelftest, HotLoopAllocIsScopedToHotPaths)
{
    auto fs = runRule("src/model/cold_loop_alloc.cc",
                      "no-hot-loop-alloc");
    EXPECT_EQ(countRule(fs, "no-hot-loop-alloc"), 0)
        << "the rule covers src/sim and src/serve only";
}

TEST(LintSelftest, UnitSuffixFires)
{
    auto fs = runRule("src/unit_suffix.cc", "unit-suffix");
    EXPECT_EQ(countRule(fs, "unit-suffix"), 4)
        << "latency, bandwidthTotal, bandwidth param, qdelay local";
}

TEST(LintSelftest, NoBareCatchFires)
{
    auto fs = runRule("src/bare_catch.cc", "no-bare-catch");
    EXPECT_EQ(countRule(fs, "no-bare-catch"), 2)
        << "the swallowing handlers; rethrow / current_exception / "
           "typed catch must not fire";
}

TEST(LintSelftest, SuppressionsSilenceEveryFinding)
{
    auto fs = lintFile(fixture("src/suppressed.cc"));
    EXPECT_TRUE(fs.empty()) << "first leak: "
                            << (fs.empty() ? ""
                                           : formatFinding(fs.front()));
}

TEST(LintSelftest, UtilRngIsExemptFromNondeterminism)
{
    auto fs = lintFile(fixture("src/util/rng.cc"));
    EXPECT_TRUE(fs.empty());
}

TEST(LintSelftest, CleanFileHasNoFindings)
{
    auto fs = lintFile(fixture("src/clean.cc"));
    EXPECT_TRUE(fs.empty()) << "first finding: "
                            << (fs.empty() ? ""
                                           : formatFinding(fs.front()));
}

TEST(LintSelftest, FindingFormatIsGrepable)
{
    auto fs = runRule("src/float_equal.cc", "float-equal");
    ASSERT_FALSE(fs.empty());
    std::string line = memsense::lint::formatFinding(fs.front());
    // file:line: rule: message
    EXPECT_NE(line.find("float_equal.cc:"), std::string::npos);
    EXPECT_NE(line.find(": float-equal: "), std::string::npos);
}

TEST(LintSelftest, JsonReportCarriesCountsAndEscapes)
{
    auto fs = runRule("src/float_equal.cc", "float-equal");
    std::string json = memsense::lint::jsonReport(fs, 1);
    EXPECT_NE(json.find("\"filesScanned\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"float-equal\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"findings\": ["), std::string::npos);
}

TEST(LintSelftest, RuleCatalogIsStable)
{
    // Every rule documented in docs/static_analysis.md exists, keyed
    // by id; adding a rule must extend the fixtures and this list.
    std::vector<std::string> ids;
    for (const auto &r : memsense::lint::allRules())
        ids.push_back(r.id);
    std::vector<std::string> expected = {
        "no-nondeterminism",    "float-equal",
        "c-style-cast",         "unclamped-double-to-int",
        "mutable-global-state", "serial-grid-loop",
        "no-untraced-sweep-loop", "no-uncached-batch-solve",
        "no-hot-loop-alloc",    "unit-suffix",
        "no-bare-catch",        "unit-mismatch",
        "unguarded-shared-state", "contract-coverage",
    };
    EXPECT_EQ(ids, expected);
}

// ------------------------------------------------------------------
// Semantic rules
// ------------------------------------------------------------------

TEST(LintSelftest, UnitMismatchFires)
{
    auto fs = runRule("src/unit_mismatch.cc", "unit-mismatch");
    for (const auto &f : fs)
        SCOPED_TRACE(formatFinding(f));
    EXPECT_EQ(countRule(fs, "unit-mismatch"), 9)
        << "arith x2, cmp x2, assign, compound, return, typed Picos, "
           "subscript; same-unit/literal/conversion/product sites must "
           "not fire";
}

TEST(LintSelftest, UnitMismatchAllowStaysQuiet)
{
    auto fs = runRule("src/unit_mismatch_allow.cc", "unit-mismatch");
    EXPECT_TRUE(fs.empty())
        << "first leak: "
        << (fs.empty() ? "" : formatFinding(fs.front()));
}

TEST(LintSelftest, UnitMismatchChecksCallArgsAcrossFiles)
{
    LintOptions opts;
    opts.ruleFilter = {"unit-mismatch"};
    auto fs = lintPaths({fixture("src/units")}, opts);
    EXPECT_EQ(countRule(fs, "unit-mismatch"), 2)
        << "both swapped arguments of applyPenalty, checked against "
           "the signature declared in timing.hh";
    for (const auto &f : fs)
        EXPECT_NE(f.file.find("callsite.cc"), std::string::npos)
            << formatFinding(f);
}

TEST(LintSelftest, UnguardedSharedStateFiresAcrossSiblingFiles)
{
    LintOptions opts;
    opts.ruleFilter = {"unguarded-shared-state"};
    auto fs = lintPaths({fixture("src/guarded")}, opts);
    ASSERT_EQ(countRule(fs, "unguarded-shared-state"), 2)
        << "entries.push_back and total += in addUnlocked; the locked, "
           "constructor, allow(), and mu.lock() sites must not fire";
    for (const auto &f : fs)
        EXPECT_EQ(f.symbol, "SharedRegistry::addUnlocked")
            << formatFinding(f);
}

TEST(LintSelftest, UnguardedSharedStateWorksSingleFile)
{
    auto fs = runRule("src/guarded_single.cc", "unguarded-shared-state");
    ASSERT_EQ(countRule(fs, "unguarded-shared-state"), 1);
    EXPECT_EQ(fs.front().symbol, "Counter::recordRacy");
}

TEST(LintSelftest, ContractCoverageFires)
{
    auto fs = runRule("src/model/contract_coverage.cc",
                      "contract-coverage");
    ASSERT_EQ(countRule(fs, "contract-coverage"), 2)
        << "uncheckedBlend and PhaseModel::blendNs; contracted, "
           "integer-only, static, and allow() functions must not fire";
    EXPECT_EQ(fs[0].symbol, "uncheckedBlend");
    EXPECT_EQ(fs[1].symbol, "PhaseModel::blendNs");
}

TEST(LintSelftest, ContractCoverageIsScopedToModelAndSim)
{
    auto fs = runRule("src/unit_suffix.cc", "contract-coverage");
    EXPECT_TRUE(fs.empty())
        << "the rule covers src/model and src/sim only";
}

// ------------------------------------------------------------------
// SARIF + baseline
// ------------------------------------------------------------------

TEST(LintSelftest, SarifReportShape)
{
    auto fs = runRule("src/float_equal.cc", "float-equal");
    ASSERT_FALSE(fs.empty());
    std::string s = memsense::lint::sarifReport(fs);
    EXPECT_NE(s.find("\"version\": \"2.1.0\""), std::string::npos);
    EXPECT_NE(s.find("\"name\": \"memsense-lint\""), std::string::npos);
    EXPECT_NE(s.find("\"ruleId\": \"float-equal\""), std::string::npos);
    EXPECT_NE(s.find("\"startLine\": "), std::string::npos);
    // The full catalog rides along so viewers can show descriptions.
    EXPECT_NE(s.find("\"id\": \"unit-mismatch\""), std::string::npos);
}

TEST(LintSelftest, BaselineRoundTripsAndKeysOnSymbolNotLine)
{
    auto fs = runRule("src/model/contract_coverage.cc",
                      "contract-coverage");
    ASSERT_FALSE(fs.empty());
    Baseline b =
        parseBaseline("inline", memsense::lint::writeBaseline(fs));
    for (const auto &f : fs)
        EXPECT_TRUE(b.covers(f)) << formatFinding(f);

    Finding moved = fs.front();
    moved.line += 500; // unrelated edits shift lines, not coverage
    EXPECT_TRUE(b.covers(moved));

    Finding other_rule = fs.front();
    other_rule.rule = "float-equal";
    EXPECT_FALSE(b.covers(other_rule));

    Finding other_symbol = fs.front();
    other_symbol.symbol = "someOtherFunction";
    EXPECT_FALSE(b.covers(other_symbol));
}

TEST(LintSelftest, BaselinePathsMatchAtSlashBoundary)
{
    Baseline b = parseBaseline(
        "inline",
        "{\"entries\": [{\"rule\": \"float-equal\", "
        "\"file\": \"src/model/solver.cc\", \"symbol\": \"solve\"}]}");
    Finding abs{"/checkout/src/model/solver.cc", 10, "float-equal", "m",
                "solve"};
    EXPECT_TRUE(b.covers(abs));
    Finding partial{"other_src/model/solver.cc", 10, "float-equal", "m",
                    "solve"};
    EXPECT_FALSE(b.covers(partial)) << "suffix must bind at a '/'";
}

TEST(LintSelftest, MalformedBaselineIsAHardError)
{
    EXPECT_THROW(parseBaseline("p", ""), std::runtime_error);
    EXPECT_THROW(parseBaseline("p", "{\"entries\": [{\"rule\": 12}]}"),
                 std::runtime_error);
    EXPECT_THROW(parseBaseline("p", "{\"entries\": []} x"),
                 std::runtime_error);
    EXPECT_THROW(parseBaseline("p", "{\"entries\": [{\"rule\": \"r\"}]}"),
                 std::runtime_error)
        << "entries missing file/symbol keys must not half-load";
    EXPECT_NO_THROW(parseBaseline("p", "{\"entries\": []}"));
}

// ------------------------------------------------------------------
// Driver hard errors
// ------------------------------------------------------------------

TEST(LintSelftest, MissingRootIsAnError)
{
    EXPECT_THROW(lintPaths({fixture("does_not_exist")}),
                 std::runtime_error);
}

TEST(LintSelftest, RootWithNoLintableFilesIsAnError)
{
    namespace fs = std::filesystem;
    fs::path d =
        fs::temp_directory_path() / "memsense_lint_empty_root_test";
    fs::create_directories(d);
    EXPECT_THROW(lintPaths({d.string()}), std::runtime_error)
        << "an empty root passes vacuously; that must be loud";
    fs::remove_all(d);

    LintOptions opts;
    opts.excludes = {"/"};
    EXPECT_THROW(lintPaths({fixture("src")}, opts), std::runtime_error)
        << "excluding every file is the same silent-pass hazard";
}

// ------------------------------------------------------------------
// Lexer regressions
// ------------------------------------------------------------------

TEST(LexerTest, PrefixedRawStringsAreOpaque)
{
    auto lx = tokenize("auto a = u8R\"(a \"quoted\" == b)\";\n"
                       "auto b = LR\"sep(time(0))sep\";\n"
                       "auto c = uR\"(std::rand())\";\n"
                       "auto d = UR\"(x != y)\";\n");
    int strs = 0;
    for (const auto &t : lx.tokens) {
        if (t.kind == TokKind::Str)
            ++strs;
        EXPECT_NE(t.text, "quoted") << "leaked out of a raw string";
        EXPECT_NE(t.text, "rand");
        EXPECT_NE(t.text, "time");
        EXPECT_NE(t.text, "==");
        EXPECT_NE(t.text, "!=");
    }
    EXPECT_EQ(strs, 4);
}

TEST(LexerTest, UnprefixedIdentifiersStillLexNormally)
{
    auto lx = tokenize("int uR2 = 0; int LRx = R2;");
    std::vector<std::string> idents;
    for (const auto &t : lx.tokens) {
        if (t.kind == TokKind::Ident)
            idents.push_back(t.text);
    }
    std::vector<std::string> expected = {"int", "uR2", "int", "LRx", "R2"};
    EXPECT_EQ(idents, expected);
}

TEST(LexerTest, LineCommentContinuationStaysComment)
{
    auto lx = tokenize("// part one \\\npart two == something\nint x;\n");
    ASSERT_EQ(lx.tokens.size(), 3u)
        << "the spliced second line is comment, not code";
    EXPECT_EQ(lx.tokens[0].text, "int");
    EXPECT_EQ(lx.tokens[0].line, 3);
    EXPECT_NE(lx.comments.count(1), 0u);
    EXPECT_NE(lx.comments.count(2), 0u);
    EXPECT_NE(lx.comments.at(2).find("part two"), std::string::npos);
}

TEST(LexerTest, DigitSeparatorsCollapse)
{
    auto lx = tokenize("long big = 1'000'000; int hex = 0xFF'FF;");
    std::vector<std::string> nums;
    for (const auto &t : lx.tokens) {
        if (t.kind == TokKind::Number)
            nums.push_back(t.text);
    }
    std::vector<std::string> expected = {"1000000", "0xFFFF"};
    EXPECT_EQ(nums, expected);
}

TEST(LexerTest, SeparatorQuoteRequiresFollowingAlnum)
{
    // A quote after a digit that does not introduce another digit
    // group ends the number instead of being swallowed into it.
    auto lx = tokenize("int a = 1'';");
    ASSERT_GE(lx.tokens.size(), 4u);
    EXPECT_EQ(lx.tokens[3].kind, TokKind::Number);
    EXPECT_EQ(lx.tokens[3].text, "1");
    EXPECT_EQ(lx.tokens[4].kind, TokKind::Chr);
}

} // anonymous namespace
