/**
 * @file
 * Rule-by-rule selftest for memsense-lint.
 *
 * Each rule has a fixture source asserting it fires at the expected
 * sites, plus negative fixtures (suppressions, the util/rng
 * exemption, and an idiomatic clean file) asserting it stays quiet.
 * Fixtures are real files under fixtures/ — never compiled, only
 * linted — so the corpus also documents what each rule means.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint.hh"

namespace
{

using memsense::lint::Finding;
using memsense::lint::formatFinding;
using memsense::lint::LintOptions;
using memsense::lint::lintFile;

std::string
fixture(const std::string &rel)
{
    return std::string(MEMSENSE_LINT_FIXTURE_DIR) + "/" + rel;
}

/** Findings for one fixture with only @p rule enabled. */
std::vector<Finding>
runRule(const std::string &rel, const std::string &rule)
{
    LintOptions opts;
    opts.ruleFilter = {rule};
    return lintFile(fixture(rel), opts);
}

int
countRule(const std::vector<Finding> &findings, const std::string &rule)
{
    return static_cast<int>(
        std::count_if(findings.begin(), findings.end(),
                      [&rule](const Finding &f) { return f.rule == rule; }));
}

TEST(LintSelftest, NoNondeterminismFires)
{
    auto fs = runRule("src/no_nondeterminism.cc", "no-nondeterminism");
    EXPECT_EQ(countRule(fs, "no-nondeterminism"), 5)
        << "random_device, rand, srand, time, steady_clock";
}

TEST(LintSelftest, FloatEqualFires)
{
    auto fs = runRule("src/float_equal.cc", "float-equal");
    EXPECT_EQ(countRule(fs, "float-equal"), 3);
}

TEST(LintSelftest, CStyleCastFires)
{
    auto fs = runRule("src/c_style_cast.cc", "c-style-cast");
    EXPECT_EQ(countRule(fs, "c-style-cast"), 4);
}

TEST(LintSelftest, UnclampedDoubleToIntFires)
{
    auto fs =
        runRule("src/unclamped_double_to_int.cc", "unclamped-double-to-int");
    EXPECT_EQ(countRule(fs, "unclamped-double-to-int"), 2)
        << "the clamped/lround/integer-source casts must not fire";
}

TEST(LintSelftest, MutableGlobalStateFires)
{
    auto fs = runRule("src/mutable_global.cc", "mutable-global-state");
    EXPECT_EQ(countRule(fs, "mutable-global-state"), 3)
        << "two globals and one static local; const/constexpr/functions "
           "must not fire";
}

TEST(LintSelftest, SerialGridLoopFiresInBench)
{
    auto fs = runRule("bench/serial_grid_loop.cc", "serial-grid-loop");
    EXPECT_EQ(countRule(fs, "serial-grid-loop"), 2)
        << "runObservation and WorkloadRun inside the loop; the "
           "straight-line call must not fire";
}

TEST(LintSelftest, UntracedSweepLoopFiresOncePerFile)
{
    auto fs = runRule("bench/untraced_sweep_loop.cc",
                      "no-untraced-sweep-loop");
    EXPECT_EQ(countRule(fs, "no-untraced-sweep-loop"), 1)
        << "advisory: one finding per file, at the first sweep call";
}

TEST(LintSelftest, TracedSweepLoopStaysQuiet)
{
    auto fs = runRule("bench/traced_sweep_loop.cc",
                      "no-untraced-sweep-loop");
    EXPECT_EQ(countRule(fs, "no-untraced-sweep-loop"), 0)
        << "a PhaseTimer scope anywhere in the file satisfies the rule";
}

TEST(LintSelftest, UncachedBatchSolveFiresOncePerFile)
{
    auto fs = runRule("bench/uncached_batch_solve.cc",
                      "no-uncached-batch-solve");
    EXPECT_EQ(countRule(fs, "no-uncached-batch-solve"), 1)
        << "advisory: one finding per file, at the first in-loop "
           "solve(); the straight-line call must not fire";
}

TEST(LintSelftest, CachedBatchSolveStaysQuiet)
{
    auto fs = runRule("bench/cached_batch_solve.cc",
                      "no-uncached-batch-solve");
    EXPECT_EQ(countRule(fs, "no-uncached-batch-solve"), 0)
        << "mentioning the memoizing Evaluator anywhere in the file "
           "satisfies the rule";
}

TEST(LintSelftest, HotLoopAllocFires)
{
    auto fs = runRule("src/sim/hot_loop_alloc.cc", "no-hot-loop-alloc");
    EXPECT_EQ(countRule(fs, "no-hot-loop-alloc"), 4)
        << "unreserved push_back, new-per-iteration, string decl, "
           "to_string; the reserved/reused/straight-line patterns "
           "must not fire";
}

TEST(LintSelftest, HotLoopAllocIsScopedToHotPaths)
{
    auto fs = runRule("src/model/cold_loop_alloc.cc",
                      "no-hot-loop-alloc");
    EXPECT_EQ(countRule(fs, "no-hot-loop-alloc"), 0)
        << "the rule covers src/sim and src/serve only";
}

TEST(LintSelftest, UnitSuffixFires)
{
    auto fs = runRule("src/unit_suffix.cc", "unit-suffix");
    EXPECT_EQ(countRule(fs, "unit-suffix"), 4)
        << "latency, bandwidthTotal, bandwidth param, qdelay local";
}

TEST(LintSelftest, NoBareCatchFires)
{
    auto fs = runRule("src/bare_catch.cc", "no-bare-catch");
    EXPECT_EQ(countRule(fs, "no-bare-catch"), 2)
        << "the swallowing handlers; rethrow / current_exception / "
           "typed catch must not fire";
}

TEST(LintSelftest, SuppressionsSilenceEveryFinding)
{
    auto fs = lintFile(fixture("src/suppressed.cc"));
    EXPECT_TRUE(fs.empty()) << "first leak: "
                            << (fs.empty() ? ""
                                           : formatFinding(fs.front()));
}

TEST(LintSelftest, UtilRngIsExemptFromNondeterminism)
{
    auto fs = lintFile(fixture("src/util/rng.cc"));
    EXPECT_TRUE(fs.empty());
}

TEST(LintSelftest, CleanFileHasNoFindings)
{
    auto fs = lintFile(fixture("src/clean.cc"));
    EXPECT_TRUE(fs.empty()) << "first finding: "
                            << (fs.empty() ? ""
                                           : formatFinding(fs.front()));
}

TEST(LintSelftest, FindingFormatIsGrepable)
{
    auto fs = runRule("src/float_equal.cc", "float-equal");
    ASSERT_FALSE(fs.empty());
    std::string line = memsense::lint::formatFinding(fs.front());
    // file:line: rule: message
    EXPECT_NE(line.find("float_equal.cc:"), std::string::npos);
    EXPECT_NE(line.find(": float-equal: "), std::string::npos);
}

TEST(LintSelftest, JsonReportCarriesCountsAndEscapes)
{
    auto fs = runRule("src/float_equal.cc", "float-equal");
    std::string json = memsense::lint::jsonReport(fs, 1);
    EXPECT_NE(json.find("\"filesScanned\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"float-equal\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"findings\": ["), std::string::npos);
}

TEST(LintSelftest, RuleCatalogIsStable)
{
    // Every rule documented in docs/static_analysis.md exists, keyed
    // by id; adding a rule must extend the fixtures and this list.
    std::vector<std::string> ids;
    for (const auto &r : memsense::lint::allRules())
        ids.push_back(r.id);
    std::vector<std::string> expected = {
        "no-nondeterminism",    "float-equal",
        "c-style-cast",         "unclamped-double-to-int",
        "mutable-global-state", "serial-grid-loop",
        "no-untraced-sweep-loop", "no-uncached-batch-solve",
        "no-hot-loop-alloc",    "unit-suffix",
        "no-bare-catch",
    };
    EXPECT_EQ(ids, expected);
}

} // anonymous namespace
