/**
 * @file
 * The memsense-lint rule catalog.
 *
 * Rules are data-driven: each is an id + summary + check function over
 * a FileContext, and the driver iterates whatever allRules() returns.
 * Adding a rule means appending one entry and one fixture (see
 * docs/static_analysis.md). Rules never see comments or string
 * contents — the lexer already dropped them — so they cannot be
 * fooled by prose that mentions rand() or `==`.
 *
 * Path-derived exemptions are part of a rule's contract (e.g. util/rng
 * is the one sanctioned randomness source), so FileContext carries the
 * classification flags rather than each rule re-parsing the path.
 */

#ifndef MEMSENSE_LINT_RULES_HH
#define MEMSENSE_LINT_RULES_HH

#include <set>
#include <string>
#include <vector>

#include "lexer.hh"
#include "symbols.hh"

namespace memsense::lint
{

/** One diagnostic produced by a rule. */
struct Finding
{
    Finding() = default;
    Finding(std::string file_, int line_, std::string rule_,
            std::string message_, std::string symbol_ = "")
        : file(std::move(file_)), line(line_), rule(std::move(rule_)),
          message(std::move(message_)), symbol(std::move(symbol_))
    {
    }

    std::string file;    ///< path as given to the linter
    int line = 0;        ///< 1-based line of the offending token
    std::string rule;    ///< rule id (e.g. "float-equal")
    std::string message; ///< human-readable explanation
    std::string symbol;  ///< enclosing function/symbol ("" = file scope)
};

/** Everything a rule may consult about one source file. */
struct FileContext
{
    std::string path;                    ///< path used in diagnostics
    std::vector<Token> toks;             ///< lexed token stream
    std::map<int, std::string> comments; ///< line -> comment text
    std::set<std::string> floatIdents;   ///< idents declared double/float
    Symbols syms;                        ///< per-file symbol table
    const SymbolIndex *index = nullptr;  ///< cross-file index (may be null)
    bool inBench = false;   ///< file lives under bench/
    bool inHotPath = false; ///< src/sim/ or src/serve/ (perf-critical)
    bool inModelOrSim = false; ///< src/model/ or src/sim/ (contract scope)
    bool rngExempt = false; ///< util/rng.* (sanctioned randomness)
    bool logExempt = false; ///< util/log.* (sanctioned global state)
    bool quarantineExempt = false; ///< util/retry.* / measure/resilience.*
};

/** A project rule: id, one-line summary, and the check itself. */
struct Rule
{
    std::string id;      ///< stable kebab-case id used in allow(...)
    std::string summary; ///< one-line description for --list-rules
    void (*check)(const FileContext &ctx, std::vector<Finding> &out);
};

/** The full rule catalog, in reporting order. */
const std::vector<Rule> &allRules();

/**
 * Build a FileContext (classification flags, float-ident table, symbol
 * table). @p index, when non-null, supplies cross-file signatures and
 * guarded_by annotations from the whole analyzed tree.
 */
FileContext makeContext(const std::string &path, const LexResult &lexed,
                        const SymbolIndex *index = nullptr);

} // namespace memsense::lint

#endif // MEMSENSE_LINT_RULES_HH
