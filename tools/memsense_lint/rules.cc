#include "rules.hh"

#include <algorithm>
#include <cctype>

namespace memsense::lint
{

namespace
{

const Token kNullTok{TokKind::Punct, "", 0};

const Token &
at(const std::vector<Token> &toks, std::size_t i)
{
    return i < toks.size() ? toks[i] : kNullTok;
}

bool
isIdent(const Token &t, const char *text)
{
    return t.kind == TokKind::Ident && t.text == text;
}

bool
isPunct(const Token &t, const char *text)
{
    return t.kind == TokKind::Punct && t.text == text;
}

std::string
lowercase(const std::string &s)
{
    std::string out = s;
    std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return out;
}

/** Find the index of the matching closer for the opener at @p open. */
std::size_t
matchDelim(const std::vector<Token> &toks, std::size_t open,
           const char *opener, const char *closer)
{
    int depth = 0;
    for (std::size_t i = open; i < toks.size(); ++i) {
        if (isPunct(toks[i], opener))
            ++depth;
        else if (isPunct(toks[i], closer) && --depth == 0)
            return i;
    }
    return toks.size();
}

bool
contains(const std::set<std::string> &set, const std::string &s)
{
    return set.count(s) != 0;
}

/** Token ranges (begin, end) of loop bodies for @p keywords. */
std::vector<std::pair<std::size_t, std::size_t>>
loopBodies(const std::vector<Token> &toks,
           const std::set<std::string> &keywords)
{
    std::vector<std::pair<std::size_t, std::size_t>> bodies;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != TokKind::Ident ||
            !contains(keywords, toks[i].text) ||
            !isPunct(at(toks, i + 1), "("))
            continue;
        std::size_t head_end = matchDelim(toks, i + 1, "(", ")");
        if (head_end >= toks.size())
            continue;
        std::size_t body_begin = head_end + 1;
        std::size_t body_end;
        if (isPunct(at(toks, body_begin), "{")) {
            body_end = matchDelim(toks, body_begin, "{", "}");
        } else {
            body_end = body_begin;
            while (body_end < toks.size() && !isPunct(toks[body_end], ";"))
                ++body_end;
        }
        bodies.emplace_back(body_begin, body_end);
    }
    return bodies;
}

/** Token ranges (begin, end) of every for-loop body in the file. */
std::vector<std::pair<std::size_t, std::size_t>>
forLoopBodies(const std::vector<Token> &toks)
{
    static const std::set<std::string> kw = {"for"};
    return loopBodies(toks, kw);
}

bool
insideAny(const std::vector<std::pair<std::size_t, std::size_t>> &bodies,
          std::size_t i)
{
    for (const auto &[b, e] : bodies) {
        if (i > b && i < e)
            return true;
    }
    return false;
}

// ---------------------------------------------------------------------
// no-nondeterminism
// ---------------------------------------------------------------------

void
checkNondeterminism(const FileContext &ctx, std::vector<Finding> &out)
{
    if (ctx.rngExempt)
        return;
    // Banned when called: rand() and friends, wall-clock reads.
    static const std::set<std::string> banned_calls = {
        "rand",    "srand",   "rand_r",       "drand48", "lrand48",
        "mrand48", "random",  "gettimeofday", "time",    "clock",
        "getpid",
    };
    // Banned on sight: entropy / wall-clock sources by name.
    static const std::set<std::string> banned_idents = {
        "random_device", "system_clock", "steady_clock",
        "high_resolution_clock",
    };
    const auto &toks = ctx.toks;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != TokKind::Ident)
            continue;
        const Token &prev = at(toks, i - 1);
        // Member access (cfg.time, s.clock) is not the libc call.
        if (isPunct(prev, ".") || isPunct(prev, "->"))
            continue;
        if (contains(banned_idents, t.text)) {
            out.push_back({ctx.path, t.line, "no-nondeterminism",
                           "'" + t.text +
                               "' is a nondeterminism source; all "
                               "randomness must flow through util/rng "
                               "(memsense::Rng) so runs are "
                               "seed-reproducible"});
            continue;
        }
        if (contains(banned_calls, t.text) && isPunct(at(toks, i + 1), "(")) {
            out.push_back({ctx.path, t.line, "no-nondeterminism",
                           "call to '" + t.text +
                               "()' is banned; derive all randomness "
                               "and timing from the seeded util/rng / "
                               "simulated clock so results are "
                               "reproducible"});
        }
    }
}

// ---------------------------------------------------------------------
// float-equal
// ---------------------------------------------------------------------

bool
isFloatish(const FileContext &ctx, const Token &t)
{
    if (t.kind == TokKind::Number)
        return isFloatLiteral(t.text);
    if (t.kind == TokKind::Ident)
        return ctx.floatIdents.count(t.text) != 0;
    return false;
}

void
checkFloatEqual(const FileContext &ctx, std::vector<Finding> &out)
{
    const auto &toks = ctx.toks;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != TokKind::Punct || (t.text != "==" && t.text != "!="))
            continue;
        if (isFloatish(ctx, at(toks, i - 1)) ||
            isFloatish(ctx, at(toks, i + 1))) {
            out.push_back({ctx.path, t.line, "float-equal",
                           "floating-point '" + t.text +
                               "' comparison; use a tolerance, or "
                               "annotate an exact-sentinel check with "
                               "allow(float-equal) and a reason"});
        }
    }
}

// ---------------------------------------------------------------------
// c-style-cast
// ---------------------------------------------------------------------

const std::set<std::string> &
arithTypeTokens()
{
    static const std::set<std::string> set = {
        "int",      "long",     "short",    "unsigned",  "signed",
        "float",    "double",   "char",     "size_t",    "ssize_t",
        "ptrdiff_t", "int8_t",  "int16_t",  "int32_t",   "int64_t",
        "uint8_t",  "uint16_t", "uint32_t", "uint64_t",  "uintptr_t",
        "intptr_t", "Picos",    "Addr",
    };
    return set;
}

void
checkCStyleCast(const FileContext &ctx, std::vector<Finding> &out)
{
    const auto &toks = ctx.toks;
    // Prev-identifiers after which "(type)" really is a cast.
    static const std::set<std::string> cast_prev_kw = {
        "return", "throw", "else", "do", "co_return", "co_yield",
    };
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (!isPunct(toks[i], "("))
            continue;
        const Token &prev = at(toks, i - 1);
        // After a name, ')', ']', or '>' the paren is a call, a
        // declarator, or a template instantiation — not a cast.
        if (prev.kind == TokKind::Number ||
            isPunct(prev, ")") || isPunct(prev, "]") || isPunct(prev, ">"))
            continue;
        if (prev.kind == TokKind::Ident && !contains(cast_prev_kw, prev.text))
            continue;

        // The parenthesized tokens must form a pure arithmetic type
        // name: idents from the arith set plus std / ::.
        std::size_t j = i + 1;
        int arith = 0;
        bool pure = true;
        for (; j < toks.size() && !isPunct(toks[j], ")"); ++j) {
            const Token &t = toks[j];
            if (isPunct(t, "::") || isIdent(t, "std") || isIdent(t, "const"))
                continue;
            if (t.kind == TokKind::Ident &&
                contains(arithTypeTokens(), t.text)) {
                ++arith;
                continue;
            }
            pure = false;
            break;
        }
        if (!pure || arith == 0 || j >= toks.size() || j == i + 1)
            continue;
        const Token &next = at(toks, j + 1);
        bool operand = next.kind == TokKind::Ident ||
                       next.kind == TokKind::Number ||
                       isPunct(next, "(") || isPunct(next, "-") ||
                       isPunct(next, "+") || isPunct(next, "!") ||
                       isPunct(next, "~") || isPunct(next, "*") ||
                       isPunct(next, "&");
        if (!operand)
            continue;
        out.push_back({ctx.path, toks[i].line, "c-style-cast",
                       "C-style cast; narrowing must be explicit — use "
                       "static_cast<...> (and clamp double->integer "
                       "conversions)"});
    }
}

// ---------------------------------------------------------------------
// unclamped-double-to-int
// ---------------------------------------------------------------------

void
checkUnclampedCast(const FileContext &ctx, std::vector<Finding> &out)
{
    static const std::set<std::string> integral = {
        "int",      "long",     "short",    "unsigned", "signed",
        "char",     "size_t",   "ssize_t",  "ptrdiff_t", "int8_t",
        "int16_t",  "int32_t",  "int64_t",  "uint8_t",  "uint16_t",
        "uint32_t", "uint64_t", "uintptr_t", "intptr_t", "Picos",
        "Addr",
    };
    // Visible range control inside the cast argument.
    static const std::set<std::string> clampers = {
        "clamp", "min",   "max",   "lround",    "llround", "lrint",
        "llrint", "round", "floor", "ceil",     "trunc",   "nearbyint",
        "rint",  "abs",   "fmod",
    };
    const auto &toks = ctx.toks;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (!isIdent(toks[i], "static_cast") || !isPunct(at(toks, i + 1), "<"))
            continue;
        std::size_t close = matchDelim(toks, i + 1, "<", ">");
        if (close >= toks.size() || !isPunct(at(toks, close + 1), "("))
            continue;

        bool is_integral = false;
        bool pure = true;
        for (std::size_t j = i + 2; j < close; ++j) {
            const Token &t = toks[j];
            if (isPunct(t, "::") || isIdent(t, "std") || isIdent(t, "const"))
                continue;
            if (t.kind == TokKind::Ident && contains(integral, t.text)) {
                is_integral = true;
                continue;
            }
            pure = false;
            break;
        }
        if (!pure || !is_integral)
            continue;

        std::size_t arg_end = matchDelim(toks, close + 1, "(", ")");
        bool floatish = false;
        bool clamped = false;
        for (std::size_t j = close + 2; j < arg_end; ++j) {
            if (isFloatish(ctx, toks[j]))
                floatish = true;
            if (toks[j].kind == TokKind::Ident &&
                contains(clampers, toks[j].text))
                clamped = true;
        }
        if (floatish && !clamped) {
            out.push_back(
                {ctx.path, toks[i].line, "unclamped-double-to-int",
                 "double->integer static_cast without visible range "
                 "control; an out-of-range double is undefined "
                 "behaviour — clamp in the double domain first "
                 "(std::clamp/min/max/lround), or annotate with "
                 "allow(unclamped-double-to-int) and the reason the "
                 "value is already bounded"});
        }
    }
}

// ---------------------------------------------------------------------
// mutable-global-state
// ---------------------------------------------------------------------

void
checkMutableGlobal(const FileContext &ctx, std::vector<Finding> &out)
{
    if (ctx.logExempt)
        return;
    const auto &toks = ctx.toks;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (!isIdent(toks[i], "static"))
            continue;
        // Walk the declaration: a '(' before ';'/'='/'{' means a
        // function; const/constexpr/thread_local makes it safe.
        bool safe = false;
        bool function = false;
        std::size_t limit = std::min(toks.size(), i + 48);
        for (std::size_t j = i + 1; j < limit; ++j) {
            const Token &t = toks[j];
            if (isIdent(t, "const") || isIdent(t, "constexpr") ||
                isIdent(t, "constinit") || isIdent(t, "thread_local")) {
                safe = true;
                break;
            }
            if (isPunct(t, "(")) {
                function = true;
                break;
            }
            if (isPunct(t, ";") || isPunct(t, "=") || isPunct(t, "{"))
                break;
        }
        if (safe || function)
            continue;
        out.push_back(
            {ctx.path, toks[i].line, "mutable-global-state",
             "mutable static/global state; sweep jobs must share no "
             "mutable state to stay seed-deterministic — make it "
             "const/constexpr, pass it explicitly, or move it behind "
             "util/log-style synchronized ownership"});
    }
}

// ---------------------------------------------------------------------
// serial-grid-loop
// ---------------------------------------------------------------------

void
checkSerialGridLoop(const FileContext &ctx, std::vector<Finding> &out)
{
    if (!ctx.inBench)
        return;
    // Runner-level entry points that a bench grid loop must not call
    // directly; route the grid through ParallelExecutor::mapOrdered or
    // the measure:: experiment drivers instead.
    static const std::set<std::string> runner_calls = {
        "runObservation", "WorkloadRun",
    };
    const auto &toks = ctx.toks;
    auto bodies = forLoopBodies(toks);

    std::set<int> flagged_lines;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != TokKind::Ident || !contains(runner_calls, t.text))
            continue;
        if (!insideAny(bodies, i) || !flagged_lines.insert(t.line).second)
            continue;
        out.push_back(
            {ctx.path, t.line, "serial-grid-loop",
             "'" + t.text +
                 "' called from a hand-rolled grid loop runs the "
                 "sweep serially and ignores --jobs; build the grid "
                 "as a job vector and run it through "
                 "measure::ParallelExecutor::mapOrdered (or a "
                 "measure:: experiment driver)"});
    }
}

// ---------------------------------------------------------------------
// no-untraced-sweep-loop
// ---------------------------------------------------------------------

void
checkUntracedSweepLoop(const FileContext &ctx, std::vector<Finding> &out)
{
    if (!ctx.inBench)
        return;
    // Sweep-engine entry points a bench driver can hand a grid to.
    // Each runs many jobs, so an untimed call leaves the dominant
    // phase of the run invisible to the metrics artifact.
    static const std::set<std::string> sweep_calls = {
        "mapOrdered",
        "mapOrderedResilient",
        "mapIndicesResilient",
        "mapOrderedResilientCheckpointed",
        "characterizeMany",
        "characterizeManyResilient",
        "characterizeAll",
        "sweepLoadedLatency",
        "sweepLoadedLatencyResilient",
        "captureTimeSeriesBatch",
        "captureTimeSeriesBatchResilient",
    };
    const auto &toks = ctx.toks;
    bool observed = false;
    for (const Token &t : toks) {
        if (t.kind == TokKind::Ident &&
            (t.text == "MS_TRACE_SPAN" || t.text == "PhaseTimer")) {
            observed = true;
            break;
        }
    }
    if (observed)
        return;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != TokKind::Ident || !contains(sweep_calls, t.text) ||
            !isPunct(at(toks, i + 1), "("))
            continue;
        out.push_back(
            {ctx.path, t.line, "no-untraced-sweep-loop",
             "'" + t.text +
                 "' runs a sweep but the file declares no "
                 "observability scope; wrap the sweep in a "
                 "measure::PhaseTimer (or MS_TRACE_SPAN) so --metrics "
                 "runs report where the wall-clock went"});
        return; // advisory: once per file is enough
    }
}

// ---------------------------------------------------------------------
// no-uncached-batch-solve
// ---------------------------------------------------------------------

void
checkUncachedBatchSolve(const FileContext &ctx, std::vector<Finding> &out)
{
    if (!ctx.inBench)
        return;
    const auto &toks = ctx.toks;
    // A file that mentions the memoizing evaluator has already routed
    // (some of) its solves through the cache; stay quiet rather than
    // guess which call sites remain cold.
    for (const Token &t : toks) {
        if (isIdent(t, "Evaluator"))
            return;
    }
    auto bodies = forLoopBodies(toks);
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (!isIdent(t, "solve") || !isPunct(at(toks, i + 1), "("))
            continue;
        const Token &prev = at(toks, i - 1);
        // Only member calls (solver.solve / engine->solve): a local
        // helper named solve() is not the analytic fixed point.
        if (!isPunct(prev, ".") && !isPunct(prev, "->"))
            continue;
        if (!insideAny(bodies, i))
            continue;
        out.push_back(
            {ctx.path, t.line, "no-uncached-batch-solve",
             "'.solve()' inside a hand-rolled grid loop re-derives "
             "every operating point from scratch; route the batch "
             "through serve::Evaluator so revisited points are served "
             "from the memoizing cache, or annotate with "
             "allow(no-uncached-batch-solve) and the reason the grid "
             "never repeats a point"});
        return; // advisory: once per file is enough
    }
}

// ---------------------------------------------------------------------
// no-hot-loop-alloc
// ---------------------------------------------------------------------

void
checkHotLoopAlloc(const FileContext &ctx, std::vector<Finding> &out)
{
    if (!ctx.inHotPath)
        return;
    // Container growth that may reallocate on the iteration that
    // crosses capacity. pop_back/clear shrink in place and stay legal.
    static const std::set<std::string> growth_calls = {
        "push_back", "emplace_back", "resize",
    };
    static const std::set<std::string> loop_kw = {"for", "while"};
    const auto &toks = ctx.toks;
    auto bodies = loopBodies(toks, loop_kw);
    if (bodies.empty())
        return;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != TokKind::Ident || !insideAny(bodies, i))
            continue;
        if (t.text == "new") {
            out.push_back(
                {ctx.path, t.line, "no-hot-loop-alloc",
                 "'new' inside a loop on a simulator/serving hot path "
                 "allocates per iteration; hoist the allocation out of "
                 "the loop or bump-allocate from util::Arena, or "
                 "annotate with allow(no-hot-loop-alloc) and the "
                 "reason the loop is cold"});
            continue;
        }
        if (contains(growth_calls, t.text) &&
            (isPunct(at(toks, i - 1), ".") ||
             isPunct(at(toks, i - 1), "->")) &&
            isPunct(at(toks, i + 1), "(")) {
            out.push_back(
                {ctx.path, t.line, "no-hot-loop-alloc",
                 "'" + t.text +
                     "' inside a loop on a simulator/serving hot path "
                     "can reallocate per iteration; reserve() the "
                     "capacity outside the loop (then annotate with "
                     "allow(no-hot-loop-alloc) and where the bound "
                     "comes from), or hoist the growth out of the "
                     "loop"});
            continue;
        }
        // A std::string declared (constructed) per iteration heap-
        // allocates once it outgrows the SSO buffer; so does a
        // per-iteration to_string(). Member access before "string"
        // (x.string) is not a declaration.
        const bool string_decl =
            t.text == "string" && at(toks, i + 1).kind == TokKind::Ident &&
            !isPunct(at(toks, i - 1), ".") && !isPunct(at(toks, i - 1), "->");
        const bool to_string_call =
            t.text == "to_string" && isPunct(at(toks, i + 1), "(");
        if (string_decl || to_string_call) {
            out.push_back(
                {ctx.path, t.line, "no-hot-loop-alloc",
                 "std::string " +
                     std::string(string_decl ? "constructed"
                                             : "built by to_string()") +
                     " inside a loop on a simulator/serving hot path "
                     "mallocs past the SSO limit; hoist a reused "
                     "buffer out of the loop (clear() per iteration), "
                     "or annotate with allow(no-hot-loop-alloc) and "
                     "the reason the loop is cold"});
        }
    }
}

// ---------------------------------------------------------------------
// unit-suffix
// ---------------------------------------------------------------------

void
checkUnitSuffix(const FileContext &ctx, std::vector<Finding> &out)
{
    // Words that tie a quantity to its unit (or mark it dimensionless).
    static const std::set<std::string> unit_words = {
        "ns",    "us",      "ms",    "ps",     "picos",  "sec",
        "secs",  "seconds", "cycle", "cycles", "cyc",    "ghz",
        "mhz",   "khz",     "hz",    "gbps",   "mbps",   "kbps",
        "bps",   "byte",    "bytes", "pct",    "percent", "ratio",
        "frac",  "fraction", "factor", "norm", "rel",     "relative",
        "cpi", // cycles/instruction is a unit of its own (Eq. 1)
    };
    static const char *const quantities[] = {"latency", "bandwidth",
                                             "delay", "penalty"};
    const auto &toks = ctx.toks;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (!isIdent(toks[i], "double") && !isIdent(toks[i], "float"))
            continue;
        std::size_t j = i + 1;
        while (j < toks.size() &&
               (isIdent(toks[j], "const") || isPunct(toks[j], "&") ||
                isPunct(toks[j], "*")))
            ++j;
        const Token &name = at(toks, j);
        if (name.kind != TokKind::Ident)
            continue;
        // Functions declare their unit in the return-value name too,
        // but renaming call sites is out of scope: variables only.
        if (isPunct(at(toks, j + 1), "("))
            continue;
        std::string lower = lowercase(name.text);
        bool quantity = false;
        for (const char *q : quantities) {
            if (lower.find(q) != std::string::npos) {
                quantity = true;
                break;
            }
        }
        if (!quantity)
            continue;
        bool suffixed = false;
        for (const std::string &w : identWords(name.text)) {
            if (contains(unit_words, w)) {
                suffixed = true;
                break;
            }
        }
        if (suffixed)
            continue;
        out.push_back(
            {ctx.path, name.line, "unit-suffix",
             "'" + name.text +
                 "' holds a latency/bandwidth quantity but names no "
                 "unit; suffix it (Ns, Cycles, GBps, Bps, ...) or a "
                 "dimensionless marker (Ratio, Frac, Factor) so "
                 "cycles-vs-ns and GB/s-vs-bytes/s mixups stay "
                 "visible in review"});
    }
}

// ---------------------------------------------------------------------
// no-bare-catch
// ---------------------------------------------------------------------

void
checkBareCatch(const FileContext &ctx, std::vector<Finding> &out)
{
    if (ctx.quarantineExempt)
        return;
    // Idents proving the handler rethrows or records the error; the
    // lexer never drops these into strings, so a mention is a use.
    static const std::set<std::string> rethrow_or_record = {
        "throw", "rethrow_exception", "current_exception",
    };
    const auto &toks = ctx.toks;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (!isIdent(toks[i], "catch") || !isPunct(at(toks, i + 1), "(") ||
            !isPunct(at(toks, i + 2), "...") ||
            !isPunct(at(toks, i + 3), ")"))
            continue;
        std::size_t body_begin = i + 4;
        if (!isPunct(at(toks, body_begin), "{"))
            continue;
        std::size_t body_end = matchDelim(toks, body_begin, "{", "}");
        bool handled = false;
        for (std::size_t j = body_begin + 1; j < body_end; ++j) {
            if (toks[j].kind == TokKind::Ident &&
                contains(rethrow_or_record, toks[j].text)) {
                handled = true;
                break;
            }
        }
        if (handled)
            continue;
        out.push_back(
            {ctx.path, toks[i].line, "no-bare-catch",
             "'catch (...)' swallows the error; rethrow ('throw;' / "
             "std::rethrow_exception) or capture it with "
             "std::current_exception() for the failure manifest — "
             "silent quarantine belongs only to the resilient "
             "executor (util/retry, measure/resilience)"});
    }
}

// ---------------------------------------------------------------------
// unit-mismatch
// ---------------------------------------------------------------------

/** Unit an identifier carries: name suffix, then Picos/Cycles type. */
Unit
identUnit(const FileContext &ctx, const std::string &name)
{
    Unit u = unitFromIdentifier(name);
    if (u != Unit::Unknown)
        return u;
    auto it = ctx.syms.typedUnits.find(name);
    return it != ctx.syms.typedUnits.end() ? it->second : Unit::Unknown;
}

/**
 * Unit and spelling of the operand that *ends* at token @p i. Sets
 * @p start to the operand's first token so the caller can reject
 * operands that are really one factor of a product.
 */
Unit
leftOperandUnit(const FileContext &ctx, std::size_t i, std::size_t *start,
                std::string *spelling)
{
    const auto &toks = ctx.toks;
    const Token &t = at(toks, i);
    *start = i;
    if (t.kind == TokKind::Number)
        return Unit::Unknown;

    std::size_t name_idx = i;
    bool is_call = false;
    if (isPunct(t, ")") || isPunct(t, "]")) {
        const char *opener = isPunct(t, ")") ? "(" : "[";
        const char *closer = isPunct(t, ")") ? ")" : "]";
        int depth = 0;
        std::size_t j = i + 1;
        while (j-- > 0) {
            if (isPunct(toks[j], closer))
                ++depth;
            else if (isPunct(toks[j], opener) && --depth == 0)
                break;
        }
        if (depth != 0 || j == 0 || at(toks, j - 1).kind != TokKind::Ident)
            return Unit::Unknown;
        name_idx = j - 1;
        is_call = isPunct(t, ")");
    } else if (t.kind != TokKind::Ident) {
        return Unit::Unknown;
    }

    // Walk back over a member/scope chain so `cfg.latency_ns` starts
    // at `cfg` (product detection) but keeps the member's unit.
    std::size_t s = name_idx;
    while ((isPunct(at(toks, s - 1), ".") || isPunct(at(toks, s - 1), "->") ||
            isPunct(at(toks, s - 1), "::")) &&
           at(toks, s - 2).kind == TokKind::Ident)
        s -= 2;
    *start = s;
    *spelling = toks[name_idx].text + (is_call ? "()" : "");
    return is_call ? unitFromIdentifier(toks[name_idx].text)
                   : identUnit(ctx, toks[name_idx].text);
}

/**
 * Unit and spelling of the operand *starting* at token @p j. Sets
 * @p end one past the operand. Unknown for anything that is not a
 * lone identifier chain, call, or subscript.
 */
Unit
rightOperandUnit(const FileContext &ctx, std::size_t j, std::size_t *end,
                 std::string *spelling)
{
    const auto &toks = ctx.toks;
    while (isPunct(at(toks, j), "-") || isPunct(at(toks, j), "+") ||
           isPunct(at(toks, j), "!"))
        ++j;
    const Token &t = at(toks, j);
    *end = j + 1;
    if (t.kind != TokKind::Ident)
        return Unit::Unknown;
    std::size_t last = j;
    while ((isPunct(at(toks, last + 1), ".") ||
            isPunct(at(toks, last + 1), "->") ||
            isPunct(at(toks, last + 1), "::")) &&
           at(toks, last + 2).kind == TokKind::Ident)
        last += 2;
    if (isPunct(at(toks, last + 1), "(")) { // call
        *end = matchDelim(toks, last + 1, "(", ")") + 1;
        *spelling = toks[last].text + "()";
        return unitFromIdentifier(toks[last].text);
    }
    std::size_t e = last + 1;
    while (isPunct(at(toks, e), "["))
        e = matchDelim(toks, e, "[", "]") + 1;
    *end = e;
    *spelling = toks[last].text;
    return identUnit(ctx, toks[last].text);
}

/** True when token @p i is `*`, `/`, or `%` (a product context). */
bool
isMulDiv(const std::vector<Token> &toks, std::size_t i)
{
    const Token &t = at(toks, i);
    return isPunct(t, "*") || isPunct(t, "/") || isPunct(t, "%");
}

void
checkUnitMismatch(const FileContext &ctx, std::vector<Finding> &out)
{
    const auto &toks = ctx.toks;
    static const std::set<std::string> cmp_ops = {"<",  ">",  "<=",
                                                  ">=", "==", "!="};
    const std::string convert_hint =
        "; convert explicitly (util/units.hh: nsToCycles/cyclesToNs, "
        "Clock, nsToPicos/picosToNs) or annotate with "
        "allow(unit-mismatch) and the reason the units agree";

    for (std::size_t i = 1; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != TokKind::Punct)
            continue;
        const bool addsub = t.text == "+" || t.text == "-";
        const bool cmp = cmp_ops.count(t.text) != 0;
        const bool compound = t.text == "+=" || t.text == "-=";
        const bool assign = t.text == "=";
        if (!addsub && !cmp && !compound && !assign)
            continue;

        // Binary only: the left neighbour must end an operand.
        const Token &prev = toks[i - 1];
        if (prev.kind != TokKind::Ident && prev.kind != TokKind::Number &&
            !isPunct(prev, ")") && !isPunct(prev, "]"))
            continue;

        std::size_t lstart = 0;
        std::string lhs, rhs;
        Unit lu = leftOperandUnit(ctx, i - 1, &lstart, &lhs);
        if (lu == Unit::Unknown)
            continue;
        std::size_t rend = 0;
        Unit ru = rightOperandUnit(ctx, i + 1, &rend, &rhs);
        if (ru == Unit::Unknown || lu == ru)
            continue;

        // An operand that is one factor of a product has the product's
        // unit, which we do not derive: stay quiet.
        if (lstart > 0 && isMulDiv(toks, lstart - 1))
            continue;
        if (isMulDiv(toks, rend))
            continue;

        if (assign || compound) {
            // Single-term right-hand side only.
            const Token &after = at(toks, rend);
            if (!isPunct(after, ";") && !isPunct(after, ",") &&
                !isPunct(after, ")"))
                continue;
        }

        const char *what = addsub ? "cross-unit arithmetic"
                           : cmp  ? "cross-unit comparison"
                                  : "unit-changing assignment";
        out.push_back({ctx.path, t.line, "unit-mismatch",
                       std::string(what) + ": '" + lhs + "' [" +
                           unitName(lu) + "] " + t.text + " '" + rhs +
                           "' [" + unitName(ru) + "]" + convert_hint});
    }

    // Return-value units: a function whose name declares its unit must
    // not return a single term of a different unit.
    for (const FunctionDecl &f : ctx.syms.functions) {
        if (!f.hasBody() || f.returnUnit == Unit::Unknown)
            continue;
        for (std::size_t i = f.bodyBegin + 1; i < f.bodyEnd; ++i) {
            if (!isIdent(toks[i], "return"))
                continue;
            std::size_t rend = 0;
            std::string rhs;
            Unit ru = rightOperandUnit(ctx, i + 1, &rend, &rhs);
            if (ru == Unit::Unknown || !isPunct(at(toks, rend), ";") ||
                ru == f.returnUnit)
                continue;
            out.push_back(
                {ctx.path, toks[i].line, "unit-mismatch",
                 "'" + f.qualified + "' declares [" +
                     unitName(f.returnUnit) + "] in its name but returns '" +
                     rhs + "' [" + unitName(ru) + "]" + convert_hint,
                 f.qualified});
        }
    }

    // Call arguments against cross-file signatures: a single-term
    // argument with a unit must match the parameter's declared unit.
    if (!ctx.index)
        return;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != TokKind::Ident || !isPunct(at(toks, i + 1), "("))
            continue;
        auto it = ctx.index->functions.find(t.text);
        if (it == ctx.index->functions.end() || it->second.ambiguous)
            continue;
        const std::vector<Unit> &params = it->second.paramUnits;
        if (params.empty() ||
            std::all_of(params.begin(), params.end(),
                        [](Unit u) { return u == Unit::Unknown; }))
            continue;
        std::size_t close = matchDelim(toks, i + 1, "(", ")");
        if (close >= toks.size())
            continue;
        // Argument slice boundaries at top-level commas.
        std::vector<std::size_t> begins = {i + 2}, ends;
        int par = 0, brc = 0, sq = 0;
        for (std::size_t j = i + 2; j < close; ++j) {
            if (isPunct(toks[j], "("))
                ++par;
            else if (isPunct(toks[j], ")"))
                --par;
            else if (isPunct(toks[j], "{"))
                ++brc;
            else if (isPunct(toks[j], "}"))
                --brc;
            else if (isPunct(toks[j], "["))
                ++sq;
            else if (isPunct(toks[j], "]"))
                --sq;
            else if (isPunct(toks[j], ",") && par == 0 && brc == 0 &&
                     sq == 0) {
                ends.push_back(j);
                begins.push_back(j + 1);
            }
        }
        ends.push_back(close);
        if (close == i + 2)
            continue; // no arguments
        if (begins.size() != params.size())
            continue; // arity mismatch: overload or varargs, stay quiet
        for (std::size_t a = 0; a < begins.size(); ++a) {
            if (params[a] == Unit::Unknown)
                continue;
            std::size_t rend = 0;
            std::string rhs;
            Unit ru = rightOperandUnit(ctx, begins[a], &rend, &rhs);
            // Whole argument must be the single term we derived.
            if (ru == Unit::Unknown || rend != ends[a] || ru == params[a])
                continue;
            out.push_back(
                {ctx.path, toks[begins[a]].line, "unit-mismatch",
                 "argument " + std::to_string(a + 1) + " of '" + t.text +
                     "' expects [" + unitName(params[a]) + "] but '" + rhs +
                     "' is [" + unitName(ru) + "]" + convert_hint});
        }
    }
}

// ---------------------------------------------------------------------
// unguarded-shared-state
// ---------------------------------------------------------------------

void
checkUnguardedSharedState(const FileContext &ctx, std::vector<Finding> &out)
{
    // Applicable annotations: this file's own plus same-stem siblings
    // (a field annotated in foo.hh is enforced inside foo.cc).
    const std::vector<GuardedField> *fields = &ctx.syms.guarded;
    if (ctx.index) {
        auto it = ctx.index->guardedByStem.find(fileStem(ctx.path));
        if (it != ctx.index->guardedByStem.end())
            fields = &it->second;
    }
    if (fields->empty())
        return;

    std::map<std::string, std::set<std::string>> mutex_of; // field -> mutexes
    std::map<std::string, std::set<std::string>> class_of; // field -> classes
    std::set<std::string> guarded_classes;
    for (const GuardedField &g : *fields) {
        mutex_of[g.field].insert(g.mutexName);
        class_of[g.field].insert(g.className);
        if (!g.className.empty())
            guarded_classes.insert(g.className);
    }

    static const std::set<std::string> mutating_methods = {
        "push_back", "emplace_back", "emplace",    "insert", "erase",
        "clear",     "resize",       "pop_back",   "pop_front",
        "push_front", "assign",      "swap",       "merge",  "reserve",
    };
    static const std::set<std::string> assign_ops = {
        "=",  "+=", "-=", "*=", "/=", "%=", "&=",
        "|=", "^=", "<<=", ">>=", "++", "--",
    };
    static const std::set<std::string> lock_types = {
        "lock_guard", "unique_lock", "scoped_lock", "shared_lock",
    };

    const auto &toks = ctx.toks;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != TokKind::Ident)
            continue;
        auto fit = mutex_of.find(t.text);
        if (fit == mutex_of.end())
            continue;

        std::size_t j = i + 1;
        while (isPunct(at(toks, j), "["))
            j = matchDelim(toks, j, "[", "]") + 1;
        const Token &n = at(toks, j);
        bool mutation =
            (n.kind == TokKind::Punct && assign_ops.count(n.text) != 0) ||
            isPunct(at(toks, i - 1), "++") || isPunct(at(toks, i - 1), "--");
        if (!mutation && (isPunct(n, ".") || isPunct(n, "->")) &&
            at(toks, j + 1).kind == TokKind::Ident &&
            mutating_methods.count(at(toks, j + 1).text) != 0 &&
            isPunct(at(toks, j + 2), "("))
            mutation = true;
        if (!mutation)
            continue;

        const FunctionDecl *f = ctx.syms.enclosing(i);
        if (!f)
            continue; // declaration initializer, not a mutation site
        // Constructors/destructors of the declaring class run before
        // the object is shared.
        if (f->ctorOrDtor && guarded_classes.count(f->className) != 0)
            continue;

        // A *bare* (unprefixed or this->) use of the field name can
        // only refer to the annotated field when the enclosing function
        // is a member of the declaring class; an unrelated class in a
        // sibling file may have its own member with the same name.
        // Prefixed accesses (obj.field / ptr->field) stay enforced
        // everywhere the annotation is in scope.
        bool prefixed = isPunct(at(toks, i - 1), ".") ||
                        isPunct(at(toks, i - 1), "->");
        if (prefixed && i >= 2 && isIdent(at(toks, i - 2), "this"))
            prefixed = false;
        if (!prefixed && class_of[t.text].count(f->className) == 0)
            continue;

        const std::set<std::string> &mutexes = fit->second;
        bool locked = false;
        for (std::size_t s = f->bodyBegin; s < i && !locked; ++s) {
            const Token &lt = toks[s];
            if (lt.kind != TokKind::Ident)
                continue;
            if (lock_types.count(lt.text) != 0) {
                // The lock declaration's statement must name the mutex.
                for (std::size_t e = s + 1; e < i; ++e) {
                    if (isPunct(toks[e], ";"))
                        break;
                    if (toks[e].kind == TokKind::Ident &&
                        mutexes.count(toks[e].text) != 0) {
                        locked = true;
                        break;
                    }
                }
            } else if (mutexes.count(lt.text) != 0 &&
                       (isPunct(at(toks, s + 1), ".") ||
                        isPunct(at(toks, s + 1), "->")) &&
                       isIdent(at(toks, s + 2), "lock")) {
                locked = true;
            }
        }
        if (locked)
            continue;
        std::string mutex_list;
        for (const std::string &m : mutexes)
            mutex_list += (mutex_list.empty() ? "" : ", ") + m;
        out.push_back(
            {ctx.path, t.line, "unguarded-shared-state",
             "'" + t.text + "' is annotated guarded_by(" + mutex_list +
                 ") but is mutated with no lock on that mutex visible in "
                 "'" + f->qualified + "'; take the lock in this scope, or "
                 "annotate with allow(unguarded-shared-state) and the "
                 "reason the caller already holds it",
             f->qualified});
    }
}

// ---------------------------------------------------------------------
// contract-coverage
// ---------------------------------------------------------------------

void
checkContractCoverage(const FileContext &ctx, std::vector<Finding> &out)
{
    if (!ctx.inModelOrSim)
        return;
    static const std::set<std::string> contract_tokens = {
        "MS_REQUIRE", "MS_ENSURE", "MS_INVARIANT", "requireConfig",
        "requireInvariant",
    };
    const auto &toks = ctx.toks;
    for (const FunctionDecl &f : ctx.syms.functions) {
        if (!f.hasBody() || !f.externallyLinked || f.ctorOrDtor)
            continue;
        bool floating = std::any_of(
            f.params.begin(), f.params.end(),
            [](const ParamDecl &p) { return p.floating; });
        if (!floating)
            continue;
        bool contracted = false;
        std::size_t stop = std::min(f.bodyEnd, f.bodyBegin + 80);
        for (std::size_t i = f.bodyBegin + 1; i < stop; ++i) {
            if (toks[i].kind == TokKind::Ident &&
                contract_tokens.count(toks[i].text) != 0) {
                contracted = true;
                break;
            }
        }
        if (contracted)
            continue;
        out.push_back(
            {ctx.path, f.line, "contract-coverage",
             "externally-linked '" + f.qualified +
                 "' takes floating-point parameters but opens with no "
                 "MS_REQUIRE/requireConfig block; contract the valid "
                 "domain at the boundary (util/contract.hh), or annotate "
                 "with allow(contract-coverage) and the reason the domain "
                 "is total",
             f.qualified});
    }
}

} // anonymous namespace

FileContext
makeContext(const std::string &path, const LexResult &lexed,
            const SymbolIndex *index)
{
    FileContext ctx;
    ctx.path = path;
    ctx.toks = lexed.tokens;
    ctx.comments = lexed.comments;
    ctx.syms = scanSymbols(lexed);
    ctx.index = index;

    std::string p = path;
    std::replace(p.begin(), p.end(), '\\', '/');
    ctx.inBench = p.find("bench/") != std::string::npos;
    // The two per-access hot paths of the repo: the simulator core the
    // sweeps hammer and the serving layer's request path.
    ctx.inHotPath = p.find("src/sim/") != std::string::npos ||
                    p.find("src/serve/") != std::string::npos;
    // Contract-coverage scope: the analytic model and the simulator,
    // where every floating-point input has a physical valid domain.
    ctx.inModelOrSim = p.find("src/model/") != std::string::npos ||
                       p.find("src/sim/") != std::string::npos;
    ctx.rngExempt = p.find("util/rng.") != std::string::npos;
    ctx.logExempt = p.find("util/log.") != std::string::npos;
    // The retry/quarantine layer is where errors get classified and
    // recorded; its own classification switches end in catch (...).
    // The server's reply path joins it deliberately: a reply write to
    // a dead peer must become a counted writeError, never a throw
    // that could lose the one-reply-per-accepted-request ledger.
    ctx.quarantineExempt =
        p.find("util/retry.") != std::string::npos ||
        p.find("measure/resilience.") != std::string::npos ||
        p.find("serve/server.") != std::string::npos;

    // Per-file table of identifiers declared double/float; a cheap
    // stand-in for a type system that serves float-equal and
    // unclamped-double-to-int.
    for (std::size_t i = 0; i + 1 < ctx.toks.size(); ++i) {
        if (!isIdent(ctx.toks[i], "double") && !isIdent(ctx.toks[i], "float"))
            continue;
        std::size_t j = i + 1;
        while (j < ctx.toks.size() &&
               (isIdent(ctx.toks[j], "const") || isPunct(ctx.toks[j], "&") ||
                isPunct(ctx.toks[j], "*")))
            ++j;
        if (j < ctx.toks.size() && ctx.toks[j].kind == TokKind::Ident)
            ctx.floatIdents.insert(ctx.toks[j].text);
    }
    return ctx;
}

const std::vector<Rule> &
allRules()
{
    static const std::vector<Rule> rules = {
        {"no-nondeterminism",
         "rand()/time()/random_device & friends outside util/rng",
         checkNondeterminism},
        {"float-equal",
         "floating-point == / != comparisons",
         checkFloatEqual},
        {"c-style-cast",
         "C-style casts between arithmetic types",
         checkCStyleCast},
        {"unclamped-double-to-int",
         "double->integer static_cast without visible range control",
         checkUnclampedCast},
        {"mutable-global-state",
         "mutable globals / static locals outside util/log",
         checkMutableGlobal},
        {"serial-grid-loop",
         "bench/ grid loops that bypass measure::ParallelExecutor",
         checkSerialGridLoop},
        {"no-untraced-sweep-loop",
         "bench/ sweeps with no PhaseTimer/MS_TRACE_SPAN scope",
         checkUntracedSweepLoop},
        {"no-uncached-batch-solve",
         "bench/ solve() grid loops that bypass the serve::Evaluator "
         "cache",
         checkUncachedBatchSolve},
        {"no-hot-loop-alloc",
         "per-iteration heap allocation in src/sim and src/serve loops",
         checkHotLoopAlloc},
        {"unit-suffix",
         "latency/bandwidth identifiers without a unit suffix",
         checkUnitSuffix},
        {"no-bare-catch",
         "catch (...) that swallows without rethrow or record",
         checkBareCatch},
        {"unit-mismatch",
         "cross-unit arithmetic/comparison/assignment between "
         "unit-suffixed quantities",
         checkUnitMismatch},
        {"unguarded-shared-state",
         "guarded_by-annotated fields mutated with no visible lock",
         checkUnguardedSharedState},
        {"contract-coverage",
         "model/sim entry points with float params but no opening "
         "contract",
         checkContractCoverage},
    };
    return rules;
}

} // namespace memsense::lint
