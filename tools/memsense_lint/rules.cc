#include "rules.hh"

#include <algorithm>
#include <cctype>

namespace memsense::lint
{

namespace
{

const Token kNullTok{TokKind::Punct, "", 0};

const Token &
at(const std::vector<Token> &toks, std::size_t i)
{
    return i < toks.size() ? toks[i] : kNullTok;
}

bool
isIdent(const Token &t, const char *text)
{
    return t.kind == TokKind::Ident && t.text == text;
}

bool
isPunct(const Token &t, const char *text)
{
    return t.kind == TokKind::Punct && t.text == text;
}

/** Split an identifier into lowercased camelCase / snake_case words. */
std::vector<std::string>
identWords(const std::string &name)
{
    std::vector<std::string> words;
    std::string cur;
    for (std::size_t i = 0; i < name.size(); ++i) {
        char c = name[i];
        if (c == '_') {
            if (!cur.empty())
                words.push_back(cur);
            cur.clear();
            continue;
        }
        bool upper = std::isupper(static_cast<unsigned char>(c)) != 0;
        if (upper && !cur.empty()) {
            char prev = name[i - 1];
            bool prev_lower =
                std::islower(static_cast<unsigned char>(prev)) != 0 ||
                std::isdigit(static_cast<unsigned char>(prev)) != 0;
            bool next_lower =
                i + 1 < name.size() &&
                std::islower(static_cast<unsigned char>(name[i + 1])) != 0;
            // New word at lower->Upper, and at the last upper of an
            // acronym run ("GBps" -> "g", "bps").
            if (prev_lower || (!prev_lower && next_lower)) {
                words.push_back(cur);
                cur.clear();
            }
        }
        cur += static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    }
    if (!cur.empty())
        words.push_back(cur);
    return words;
}

std::string
lowercase(const std::string &s)
{
    std::string out = s;
    std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return out;
}

/** Find the index of the matching closer for the opener at @p open. */
std::size_t
matchDelim(const std::vector<Token> &toks, std::size_t open,
           const char *opener, const char *closer)
{
    int depth = 0;
    for (std::size_t i = open; i < toks.size(); ++i) {
        if (isPunct(toks[i], opener))
            ++depth;
        else if (isPunct(toks[i], closer) && --depth == 0)
            return i;
    }
    return toks.size();
}

bool
contains(const std::set<std::string> &set, const std::string &s)
{
    return set.count(s) != 0;
}

/** Token ranges (begin, end) of loop bodies for @p keywords. */
std::vector<std::pair<std::size_t, std::size_t>>
loopBodies(const std::vector<Token> &toks,
           const std::set<std::string> &keywords)
{
    std::vector<std::pair<std::size_t, std::size_t>> bodies;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != TokKind::Ident ||
            !contains(keywords, toks[i].text) ||
            !isPunct(at(toks, i + 1), "("))
            continue;
        std::size_t head_end = matchDelim(toks, i + 1, "(", ")");
        if (head_end >= toks.size())
            continue;
        std::size_t body_begin = head_end + 1;
        std::size_t body_end;
        if (isPunct(at(toks, body_begin), "{")) {
            body_end = matchDelim(toks, body_begin, "{", "}");
        } else {
            body_end = body_begin;
            while (body_end < toks.size() && !isPunct(toks[body_end], ";"))
                ++body_end;
        }
        bodies.emplace_back(body_begin, body_end);
    }
    return bodies;
}

/** Token ranges (begin, end) of every for-loop body in the file. */
std::vector<std::pair<std::size_t, std::size_t>>
forLoopBodies(const std::vector<Token> &toks)
{
    static const std::set<std::string> kw = {"for"};
    return loopBodies(toks, kw);
}

bool
insideAny(const std::vector<std::pair<std::size_t, std::size_t>> &bodies,
          std::size_t i)
{
    for (const auto &[b, e] : bodies) {
        if (i > b && i < e)
            return true;
    }
    return false;
}

// ---------------------------------------------------------------------
// no-nondeterminism
// ---------------------------------------------------------------------

void
checkNondeterminism(const FileContext &ctx, std::vector<Finding> &out)
{
    if (ctx.rngExempt)
        return;
    // Banned when called: rand() and friends, wall-clock reads.
    static const std::set<std::string> banned_calls = {
        "rand",    "srand",   "rand_r",       "drand48", "lrand48",
        "mrand48", "random",  "gettimeofday", "time",    "clock",
        "getpid",
    };
    // Banned on sight: entropy / wall-clock sources by name.
    static const std::set<std::string> banned_idents = {
        "random_device", "system_clock", "steady_clock",
        "high_resolution_clock",
    };
    const auto &toks = ctx.toks;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != TokKind::Ident)
            continue;
        const Token &prev = at(toks, i - 1);
        // Member access (cfg.time, s.clock) is not the libc call.
        if (isPunct(prev, ".") || isPunct(prev, "->"))
            continue;
        if (contains(banned_idents, t.text)) {
            out.push_back({ctx.path, t.line, "no-nondeterminism",
                           "'" + t.text +
                               "' is a nondeterminism source; all "
                               "randomness must flow through util/rng "
                               "(memsense::Rng) so runs are "
                               "seed-reproducible"});
            continue;
        }
        if (contains(banned_calls, t.text) && isPunct(at(toks, i + 1), "(")) {
            out.push_back({ctx.path, t.line, "no-nondeterminism",
                           "call to '" + t.text +
                               "()' is banned; derive all randomness "
                               "and timing from the seeded util/rng / "
                               "simulated clock so results are "
                               "reproducible"});
        }
    }
}

// ---------------------------------------------------------------------
// float-equal
// ---------------------------------------------------------------------

bool
isFloatish(const FileContext &ctx, const Token &t)
{
    if (t.kind == TokKind::Number)
        return isFloatLiteral(t.text);
    if (t.kind == TokKind::Ident)
        return ctx.floatIdents.count(t.text) != 0;
    return false;
}

void
checkFloatEqual(const FileContext &ctx, std::vector<Finding> &out)
{
    const auto &toks = ctx.toks;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != TokKind::Punct || (t.text != "==" && t.text != "!="))
            continue;
        if (isFloatish(ctx, at(toks, i - 1)) ||
            isFloatish(ctx, at(toks, i + 1))) {
            out.push_back({ctx.path, t.line, "float-equal",
                           "floating-point '" + t.text +
                               "' comparison; use a tolerance, or "
                               "annotate an exact-sentinel check with "
                               "allow(float-equal) and a reason"});
        }
    }
}

// ---------------------------------------------------------------------
// c-style-cast
// ---------------------------------------------------------------------

const std::set<std::string> &
arithTypeTokens()
{
    static const std::set<std::string> set = {
        "int",      "long",     "short",    "unsigned",  "signed",
        "float",    "double",   "char",     "size_t",    "ssize_t",
        "ptrdiff_t", "int8_t",  "int16_t",  "int32_t",   "int64_t",
        "uint8_t",  "uint16_t", "uint32_t", "uint64_t",  "uintptr_t",
        "intptr_t", "Picos",    "Addr",
    };
    return set;
}

void
checkCStyleCast(const FileContext &ctx, std::vector<Finding> &out)
{
    const auto &toks = ctx.toks;
    // Prev-identifiers after which "(type)" really is a cast.
    static const std::set<std::string> cast_prev_kw = {
        "return", "throw", "else", "do", "co_return", "co_yield",
    };
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (!isPunct(toks[i], "("))
            continue;
        const Token &prev = at(toks, i - 1);
        // After a name, ')', ']', or '>' the paren is a call, a
        // declarator, or a template instantiation — not a cast.
        if (prev.kind == TokKind::Number ||
            isPunct(prev, ")") || isPunct(prev, "]") || isPunct(prev, ">"))
            continue;
        if (prev.kind == TokKind::Ident && !contains(cast_prev_kw, prev.text))
            continue;

        // The parenthesized tokens must form a pure arithmetic type
        // name: idents from the arith set plus std / ::.
        std::size_t j = i + 1;
        int arith = 0;
        bool pure = true;
        for (; j < toks.size() && !isPunct(toks[j], ")"); ++j) {
            const Token &t = toks[j];
            if (isPunct(t, "::") || isIdent(t, "std") || isIdent(t, "const"))
                continue;
            if (t.kind == TokKind::Ident &&
                contains(arithTypeTokens(), t.text)) {
                ++arith;
                continue;
            }
            pure = false;
            break;
        }
        if (!pure || arith == 0 || j >= toks.size() || j == i + 1)
            continue;
        const Token &next = at(toks, j + 1);
        bool operand = next.kind == TokKind::Ident ||
                       next.kind == TokKind::Number ||
                       isPunct(next, "(") || isPunct(next, "-") ||
                       isPunct(next, "+") || isPunct(next, "!") ||
                       isPunct(next, "~") || isPunct(next, "*") ||
                       isPunct(next, "&");
        if (!operand)
            continue;
        out.push_back({ctx.path, toks[i].line, "c-style-cast",
                       "C-style cast; narrowing must be explicit — use "
                       "static_cast<...> (and clamp double->integer "
                       "conversions)"});
    }
}

// ---------------------------------------------------------------------
// unclamped-double-to-int
// ---------------------------------------------------------------------

void
checkUnclampedCast(const FileContext &ctx, std::vector<Finding> &out)
{
    static const std::set<std::string> integral = {
        "int",      "long",     "short",    "unsigned", "signed",
        "char",     "size_t",   "ssize_t",  "ptrdiff_t", "int8_t",
        "int16_t",  "int32_t",  "int64_t",  "uint8_t",  "uint16_t",
        "uint32_t", "uint64_t", "uintptr_t", "intptr_t", "Picos",
        "Addr",
    };
    // Visible range control inside the cast argument.
    static const std::set<std::string> clampers = {
        "clamp", "min",   "max",   "lround",    "llround", "lrint",
        "llrint", "round", "floor", "ceil",     "trunc",   "nearbyint",
        "rint",  "abs",   "fmod",
    };
    const auto &toks = ctx.toks;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (!isIdent(toks[i], "static_cast") || !isPunct(at(toks, i + 1), "<"))
            continue;
        std::size_t close = matchDelim(toks, i + 1, "<", ">");
        if (close >= toks.size() || !isPunct(at(toks, close + 1), "("))
            continue;

        bool is_integral = false;
        bool pure = true;
        for (std::size_t j = i + 2; j < close; ++j) {
            const Token &t = toks[j];
            if (isPunct(t, "::") || isIdent(t, "std") || isIdent(t, "const"))
                continue;
            if (t.kind == TokKind::Ident && contains(integral, t.text)) {
                is_integral = true;
                continue;
            }
            pure = false;
            break;
        }
        if (!pure || !is_integral)
            continue;

        std::size_t arg_end = matchDelim(toks, close + 1, "(", ")");
        bool floatish = false;
        bool clamped = false;
        for (std::size_t j = close + 2; j < arg_end; ++j) {
            if (isFloatish(ctx, toks[j]))
                floatish = true;
            if (toks[j].kind == TokKind::Ident &&
                contains(clampers, toks[j].text))
                clamped = true;
        }
        if (floatish && !clamped) {
            out.push_back(
                {ctx.path, toks[i].line, "unclamped-double-to-int",
                 "double->integer static_cast without visible range "
                 "control; an out-of-range double is undefined "
                 "behaviour — clamp in the double domain first "
                 "(std::clamp/min/max/lround), or annotate with "
                 "allow(unclamped-double-to-int) and the reason the "
                 "value is already bounded"});
        }
    }
}

// ---------------------------------------------------------------------
// mutable-global-state
// ---------------------------------------------------------------------

void
checkMutableGlobal(const FileContext &ctx, std::vector<Finding> &out)
{
    if (ctx.logExempt)
        return;
    const auto &toks = ctx.toks;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (!isIdent(toks[i], "static"))
            continue;
        // Walk the declaration: a '(' before ';'/'='/'{' means a
        // function; const/constexpr/thread_local makes it safe.
        bool safe = false;
        bool function = false;
        std::size_t limit = std::min(toks.size(), i + 48);
        for (std::size_t j = i + 1; j < limit; ++j) {
            const Token &t = toks[j];
            if (isIdent(t, "const") || isIdent(t, "constexpr") ||
                isIdent(t, "constinit") || isIdent(t, "thread_local")) {
                safe = true;
                break;
            }
            if (isPunct(t, "(")) {
                function = true;
                break;
            }
            if (isPunct(t, ";") || isPunct(t, "=") || isPunct(t, "{"))
                break;
        }
        if (safe || function)
            continue;
        out.push_back(
            {ctx.path, toks[i].line, "mutable-global-state",
             "mutable static/global state; sweep jobs must share no "
             "mutable state to stay seed-deterministic — make it "
             "const/constexpr, pass it explicitly, or move it behind "
             "util/log-style synchronized ownership"});
    }
}

// ---------------------------------------------------------------------
// serial-grid-loop
// ---------------------------------------------------------------------

void
checkSerialGridLoop(const FileContext &ctx, std::vector<Finding> &out)
{
    if (!ctx.inBench)
        return;
    // Runner-level entry points that a bench grid loop must not call
    // directly; route the grid through ParallelExecutor::mapOrdered or
    // the measure:: experiment drivers instead.
    static const std::set<std::string> runner_calls = {
        "runObservation", "WorkloadRun",
    };
    const auto &toks = ctx.toks;
    auto bodies = forLoopBodies(toks);

    std::set<int> flagged_lines;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != TokKind::Ident || !contains(runner_calls, t.text))
            continue;
        if (!insideAny(bodies, i) || !flagged_lines.insert(t.line).second)
            continue;
        out.push_back(
            {ctx.path, t.line, "serial-grid-loop",
             "'" + t.text +
                 "' called from a hand-rolled grid loop runs the "
                 "sweep serially and ignores --jobs; build the grid "
                 "as a job vector and run it through "
                 "measure::ParallelExecutor::mapOrdered (or a "
                 "measure:: experiment driver)"});
    }
}

// ---------------------------------------------------------------------
// no-untraced-sweep-loop
// ---------------------------------------------------------------------

void
checkUntracedSweepLoop(const FileContext &ctx, std::vector<Finding> &out)
{
    if (!ctx.inBench)
        return;
    // Sweep-engine entry points a bench driver can hand a grid to.
    // Each runs many jobs, so an untimed call leaves the dominant
    // phase of the run invisible to the metrics artifact.
    static const std::set<std::string> sweep_calls = {
        "mapOrdered",
        "mapOrderedResilient",
        "mapIndicesResilient",
        "mapOrderedResilientCheckpointed",
        "characterizeMany",
        "characterizeManyResilient",
        "characterizeAll",
        "sweepLoadedLatency",
        "sweepLoadedLatencyResilient",
        "captureTimeSeriesBatch",
        "captureTimeSeriesBatchResilient",
    };
    const auto &toks = ctx.toks;
    bool observed = false;
    for (const Token &t : toks) {
        if (t.kind == TokKind::Ident &&
            (t.text == "MS_TRACE_SPAN" || t.text == "PhaseTimer")) {
            observed = true;
            break;
        }
    }
    if (observed)
        return;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != TokKind::Ident || !contains(sweep_calls, t.text) ||
            !isPunct(at(toks, i + 1), "("))
            continue;
        out.push_back(
            {ctx.path, t.line, "no-untraced-sweep-loop",
             "'" + t.text +
                 "' runs a sweep but the file declares no "
                 "observability scope; wrap the sweep in a "
                 "measure::PhaseTimer (or MS_TRACE_SPAN) so --metrics "
                 "runs report where the wall-clock went"});
        return; // advisory: once per file is enough
    }
}

// ---------------------------------------------------------------------
// no-uncached-batch-solve
// ---------------------------------------------------------------------

void
checkUncachedBatchSolve(const FileContext &ctx, std::vector<Finding> &out)
{
    if (!ctx.inBench)
        return;
    const auto &toks = ctx.toks;
    // A file that mentions the memoizing evaluator has already routed
    // (some of) its solves through the cache; stay quiet rather than
    // guess which call sites remain cold.
    for (const Token &t : toks) {
        if (isIdent(t, "Evaluator"))
            return;
    }
    auto bodies = forLoopBodies(toks);
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (!isIdent(t, "solve") || !isPunct(at(toks, i + 1), "("))
            continue;
        const Token &prev = at(toks, i - 1);
        // Only member calls (solver.solve / engine->solve): a local
        // helper named solve() is not the analytic fixed point.
        if (!isPunct(prev, ".") && !isPunct(prev, "->"))
            continue;
        if (!insideAny(bodies, i))
            continue;
        out.push_back(
            {ctx.path, t.line, "no-uncached-batch-solve",
             "'.solve()' inside a hand-rolled grid loop re-derives "
             "every operating point from scratch; route the batch "
             "through serve::Evaluator so revisited points are served "
             "from the memoizing cache, or annotate with "
             "allow(no-uncached-batch-solve) and the reason the grid "
             "never repeats a point"});
        return; // advisory: once per file is enough
    }
}

// ---------------------------------------------------------------------
// no-hot-loop-alloc
// ---------------------------------------------------------------------

void
checkHotLoopAlloc(const FileContext &ctx, std::vector<Finding> &out)
{
    if (!ctx.inHotPath)
        return;
    // Container growth that may reallocate on the iteration that
    // crosses capacity. pop_back/clear shrink in place and stay legal.
    static const std::set<std::string> growth_calls = {
        "push_back", "emplace_back", "resize",
    };
    static const std::set<std::string> loop_kw = {"for", "while"};
    const auto &toks = ctx.toks;
    auto bodies = loopBodies(toks, loop_kw);
    if (bodies.empty())
        return;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != TokKind::Ident || !insideAny(bodies, i))
            continue;
        if (t.text == "new") {
            out.push_back(
                {ctx.path, t.line, "no-hot-loop-alloc",
                 "'new' inside a loop on a simulator/serving hot path "
                 "allocates per iteration; hoist the allocation out of "
                 "the loop or bump-allocate from util::Arena, or "
                 "annotate with allow(no-hot-loop-alloc) and the "
                 "reason the loop is cold"});
            continue;
        }
        if (contains(growth_calls, t.text) &&
            (isPunct(at(toks, i - 1), ".") ||
             isPunct(at(toks, i - 1), "->")) &&
            isPunct(at(toks, i + 1), "(")) {
            out.push_back(
                {ctx.path, t.line, "no-hot-loop-alloc",
                 "'" + t.text +
                     "' inside a loop on a simulator/serving hot path "
                     "can reallocate per iteration; reserve() the "
                     "capacity outside the loop (then annotate with "
                     "allow(no-hot-loop-alloc) and where the bound "
                     "comes from), or hoist the growth out of the "
                     "loop"});
            continue;
        }
        // A std::string declared (constructed) per iteration heap-
        // allocates once it outgrows the SSO buffer; so does a
        // per-iteration to_string(). Member access before "string"
        // (x.string) is not a declaration.
        const bool string_decl =
            t.text == "string" && at(toks, i + 1).kind == TokKind::Ident &&
            !isPunct(at(toks, i - 1), ".") && !isPunct(at(toks, i - 1), "->");
        const bool to_string_call =
            t.text == "to_string" && isPunct(at(toks, i + 1), "(");
        if (string_decl || to_string_call) {
            out.push_back(
                {ctx.path, t.line, "no-hot-loop-alloc",
                 "std::string " +
                     std::string(string_decl ? "constructed"
                                             : "built by to_string()") +
                     " inside a loop on a simulator/serving hot path "
                     "mallocs past the SSO limit; hoist a reused "
                     "buffer out of the loop (clear() per iteration), "
                     "or annotate with allow(no-hot-loop-alloc) and "
                     "the reason the loop is cold"});
        }
    }
}

// ---------------------------------------------------------------------
// unit-suffix
// ---------------------------------------------------------------------

void
checkUnitSuffix(const FileContext &ctx, std::vector<Finding> &out)
{
    // Words that tie a quantity to its unit (or mark it dimensionless).
    static const std::set<std::string> unit_words = {
        "ns",    "us",      "ms",    "ps",     "picos",  "sec",
        "secs",  "seconds", "cycle", "cycles", "cyc",    "ghz",
        "mhz",   "khz",     "hz",    "gbps",   "mbps",   "kbps",
        "bps",   "byte",    "bytes", "pct",    "percent", "ratio",
        "frac",  "fraction", "factor", "norm", "rel",     "relative",
        "cpi", // cycles/instruction is a unit of its own (Eq. 1)
    };
    static const char *const quantities[] = {"latency", "bandwidth",
                                             "delay", "penalty"};
    const auto &toks = ctx.toks;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (!isIdent(toks[i], "double") && !isIdent(toks[i], "float"))
            continue;
        std::size_t j = i + 1;
        while (j < toks.size() &&
               (isIdent(toks[j], "const") || isPunct(toks[j], "&") ||
                isPunct(toks[j], "*")))
            ++j;
        const Token &name = at(toks, j);
        if (name.kind != TokKind::Ident)
            continue;
        // Functions declare their unit in the return-value name too,
        // but renaming call sites is out of scope: variables only.
        if (isPunct(at(toks, j + 1), "("))
            continue;
        std::string lower = lowercase(name.text);
        bool quantity = false;
        for (const char *q : quantities) {
            if (lower.find(q) != std::string::npos) {
                quantity = true;
                break;
            }
        }
        if (!quantity)
            continue;
        bool suffixed = false;
        for (const std::string &w : identWords(name.text)) {
            if (contains(unit_words, w)) {
                suffixed = true;
                break;
            }
        }
        if (suffixed)
            continue;
        out.push_back(
            {ctx.path, name.line, "unit-suffix",
             "'" + name.text +
                 "' holds a latency/bandwidth quantity but names no "
                 "unit; suffix it (Ns, Cycles, GBps, Bps, ...) or a "
                 "dimensionless marker (Ratio, Frac, Factor) so "
                 "cycles-vs-ns and GB/s-vs-bytes/s mixups stay "
                 "visible in review"});
    }
}

// ---------------------------------------------------------------------
// no-bare-catch
// ---------------------------------------------------------------------

void
checkBareCatch(const FileContext &ctx, std::vector<Finding> &out)
{
    if (ctx.quarantineExempt)
        return;
    // Idents proving the handler rethrows or records the error; the
    // lexer never drops these into strings, so a mention is a use.
    static const std::set<std::string> rethrow_or_record = {
        "throw", "rethrow_exception", "current_exception",
    };
    const auto &toks = ctx.toks;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (!isIdent(toks[i], "catch") || !isPunct(at(toks, i + 1), "(") ||
            !isPunct(at(toks, i + 2), "...") ||
            !isPunct(at(toks, i + 3), ")"))
            continue;
        std::size_t body_begin = i + 4;
        if (!isPunct(at(toks, body_begin), "{"))
            continue;
        std::size_t body_end = matchDelim(toks, body_begin, "{", "}");
        bool handled = false;
        for (std::size_t j = body_begin + 1; j < body_end; ++j) {
            if (toks[j].kind == TokKind::Ident &&
                contains(rethrow_or_record, toks[j].text)) {
                handled = true;
                break;
            }
        }
        if (handled)
            continue;
        out.push_back(
            {ctx.path, toks[i].line, "no-bare-catch",
             "'catch (...)' swallows the error; rethrow ('throw;' / "
             "std::rethrow_exception) or capture it with "
             "std::current_exception() for the failure manifest — "
             "silent quarantine belongs only to the resilient "
             "executor (util/retry, measure/resilience)"});
    }
}

} // anonymous namespace

FileContext
makeContext(const std::string &path, const LexResult &lexed)
{
    FileContext ctx;
    ctx.path = path;
    ctx.toks = lexed.tokens;
    ctx.comments = lexed.comments;

    std::string p = path;
    std::replace(p.begin(), p.end(), '\\', '/');
    ctx.inBench = p.find("bench/") != std::string::npos;
    // The two per-access hot paths of the repo: the simulator core the
    // sweeps hammer and the serving layer's request path.
    ctx.inHotPath = p.find("src/sim/") != std::string::npos ||
                    p.find("src/serve/") != std::string::npos;
    ctx.rngExempt = p.find("util/rng.") != std::string::npos;
    ctx.logExempt = p.find("util/log.") != std::string::npos;
    // The retry/quarantine layer is where errors get classified and
    // recorded; its own classification switches end in catch (...).
    ctx.quarantineExempt =
        p.find("util/retry.") != std::string::npos ||
        p.find("measure/resilience.") != std::string::npos;

    // Per-file table of identifiers declared double/float; a cheap
    // stand-in for a type system that serves float-equal and
    // unclamped-double-to-int.
    for (std::size_t i = 0; i + 1 < ctx.toks.size(); ++i) {
        if (!isIdent(ctx.toks[i], "double") && !isIdent(ctx.toks[i], "float"))
            continue;
        std::size_t j = i + 1;
        while (j < ctx.toks.size() &&
               (isIdent(ctx.toks[j], "const") || isPunct(ctx.toks[j], "&") ||
                isPunct(ctx.toks[j], "*")))
            ++j;
        if (j < ctx.toks.size() && ctx.toks[j].kind == TokKind::Ident)
            ctx.floatIdents.insert(ctx.toks[j].text);
    }
    return ctx;
}

const std::vector<Rule> &
allRules()
{
    static const std::vector<Rule> rules = {
        {"no-nondeterminism",
         "rand()/time()/random_device & friends outside util/rng",
         checkNondeterminism},
        {"float-equal",
         "floating-point == / != comparisons",
         checkFloatEqual},
        {"c-style-cast",
         "C-style casts between arithmetic types",
         checkCStyleCast},
        {"unclamped-double-to-int",
         "double->integer static_cast without visible range control",
         checkUnclampedCast},
        {"mutable-global-state",
         "mutable globals / static locals outside util/log",
         checkMutableGlobal},
        {"serial-grid-loop",
         "bench/ grid loops that bypass measure::ParallelExecutor",
         checkSerialGridLoop},
        {"no-untraced-sweep-loop",
         "bench/ sweeps with no PhaseTimer/MS_TRACE_SPAN scope",
         checkUntracedSweepLoop},
        {"no-uncached-batch-solve",
         "bench/ solve() grid loops that bypass the serve::Evaluator "
         "cache",
         checkUncachedBatchSolve},
        {"no-hot-loop-alloc",
         "per-iteration heap allocation in src/sim and src/serve loops",
         checkHotLoopAlloc},
        {"unit-suffix",
         "latency/bandwidth identifiers without a unit suffix",
         checkUnitSuffix},
        {"no-bare-catch",
         "catch (...) that swallows without rethrow or record",
         checkBareCatch},
    };
    return rules;
}

} // namespace memsense::lint
