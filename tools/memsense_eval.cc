/**
 * @file
 * memsense_eval — batch evaluation service CLI.
 *
 * Reads JSON-lines solve requests (see src/serve/request.hh for the
 * schema), evaluates them through the memoizing serve::Evaluator, and
 * writes one JSON result line per request to stdout, in input order.
 * Per-request failures (malformed lines, out-of-domain parameters,
 * non-converging solves) become error result lines; the process exits
 * 0 whenever the batch itself ran. The output is byte-identical for
 * any --jobs value and any cache temperature (see docs/serving.md).
 *
 *     memsense_eval --requests batch.jsonl --jobs 8
 *     memsense_eval --requests - < batch.jsonl   # stdin
 *
 * SIGINT/SIGTERM interrupt the batch cooperatively: the run stops
 * reading, evaluates and emits what was already ingested, still
 * flushes `--metrics`/`--stats`, and exits with code 3 so callers can
 * tell "interrupted but flushed" from success (0) and hard errors (1).
 */

#include <atomic>
#include <csignal>
#include <fstream>
#include <iostream>
#include <string>

#include "measure/metrics.hh"
#include "serve/service.hh"
#include "util/cli.hh"
#include "util/error.hh"
#include "util/trace.hh"

using namespace memsense;

namespace
{

/** Exit code of an interrupted-but-flushed run (docs/serving.md). */
constexpr int kExitInterrupted = 3;

// memsense-lint: allow(mutable-global-state): the signal handler can
// only reach process-global state; one lock-free flag, set by the
// handler, polled cooperatively by runEvalService.
std::atomic<bool> gStopRequested{false};

extern "C" void
onShutdownSignal(int)
{
    // Async-signal-safe: a lock-free atomic store and nothing else.
    gStopRequested.store(true, std::memory_order_relaxed);
}

void
installSignalHandlers()
{
    struct sigaction sa = {};
    sa.sa_handler = onShutdownSignal;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    CliParser cli("memsense_eval",
                  "batch-evaluate JSON-lines solve requests through "
                  "the memoizing evaluator");
    cli.addString("requests", "-",
                  "JSON-lines request file (- reads stdin)");
    cli.addInt("jobs", 1,
               "worker threads for uncached solves (0 = hardware "
               "threads); results are byte-identical for any value");
    cli.addInt("repeat", 1,
               "evaluate the batch N times against the same cache, "
               "emitting only the final (warm) pass");
    cli.addInt("cache-capacity", 1 << 16, "LRU cache entries");
    cli.addInt("cache-shards", 8, "cache shards (rounded to 2^k)");
    cli.addInt("max-retries", 0,
               "extra solve attempts after the first (transient "
               "failures only)");
    cli.addString("metrics", "",
                  "write a metrics JSON snapshot to this file");
    cli.addBool("stats", "print the run summary to stderr");
    if (!cli.parse(argc, argv))
        return 1;

    try {
        installSignalHandlers();
        serve::ServiceOptions opts;
        opts.stop = &gStopRequested;
        opts.eval.jobs = cli.getInt("jobs");
        opts.repeat = cli.getInt("repeat");
        requireConfig(cli.getInt("cache-capacity") >= 1,
                      "--cache-capacity must be >= 1");
        opts.eval.cache.capacity =
            static_cast<std::size_t>(cli.getInt("cache-capacity"));
        opts.eval.cache.shards = cli.getInt("cache-shards");
        requireConfig(cli.getInt("max-retries") >= 0,
                      "--max-retries must be >= 0");
        opts.eval.resilience.retry.maxAttempts =
            cli.getInt("max-retries") + 1;

        const bool want_metrics = !cli.getString("metrics").empty();
        if (want_metrics)
            trace::setStatsEnabled(true);

        serve::ServiceSummary summary;
        std::string path = cli.getString("requests");
        if (path == "-") {
            summary = serve::runEvalService(std::cin, std::cout, opts);
        } else {
            std::ifstream in(path);
            requireConfig(static_cast<bool>(in),
                          "cannot open request file " + path);
            summary = serve::runEvalService(in, std::cout, opts);
        }

        if (want_metrics) {
            measure::MetricsRegistry::instance().flushToFile(
                cli.getString("metrics"), "memsense_eval");
        }
        if (cli.getBool("stats"))
            std::cerr << summary.describe() << "\n";
        if (summary.interrupted) {
            std::cerr << "memsense_eval: interrupted; partial results "
                         "and metrics flushed\n";
            return kExitInterrupted;
        }
        return 0;
    } catch (const std::exception &e) {
        std::cerr << "memsense_eval: " << e.what() << "\n";
        return 1;
    }
}
