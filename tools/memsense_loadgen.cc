/**
 * @file
 * memsense_loadgen — load generator for memsense_serve.
 *
 * Replays a fixture file of JSON-lines requests against a running
 * server over N concurrent connections, injecting fresh ids (and
 * optionally deadlines), and reports reply classification counts,
 * latency percentiles, and the shed rate:
 *
 *     memsense_loadgen --tcp-port 8321 --requests fixtures.jsonl \
 *         --connections 8 --total 2000 --deadline-ms 50
 *     memsense_loadgen --unix /tmp/memsense.sock --rate 500 ...
 *
 * Dropped connections are re-dialed under a bounded exponential
 * backoff; the loadgen never hangs on a flaky server. Exit 0 when the
 * run completed and every sent request was classified; exit 1 on
 * unusable configuration; exit 2 when the report ledger does not add
 * up (a server bug worth failing CI over).
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "serve/loadgen.hh"
#include "util/cli.hh"
#include "util/error.hh"
#include "util/socket.hh"

using namespace memsense;

namespace
{

/** Exit code when sent != classified (docs/serving.md). */
constexpr int kExitLedgerMismatch = 2;

std::vector<std::string>
readFixtures(std::istream &in)
{
    std::vector<std::string> fixtures;
    std::string line;
    while (std::getline(in, line)) {
        bool blank = true;
        for (char c : line)
            if (c != ' ' && c != '\t' && c != '\r')
                blank = false;
        if (!blank)
            fixtures.push_back(line);
    }
    return fixtures;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    CliParser cli("memsense_loadgen",
                  "replay JSON-lines requests against memsense_serve "
                  "and report latency/shed statistics");
    cli.addString("requests", "-",
                  "fixture JSON-lines file (- reads stdin)");
    cli.addInt("tcp-port", -1, "connect to this TCP port");
    cli.addString("tcp-host", "127.0.0.1", "TCP server address");
    cli.addString("unix", "", "connect to this Unix-domain socket");
    cli.addInt("connections", 1, "concurrent client connections");
    cli.addInt("total", 100, "total requests across all connections");
    cli.addDouble("deadline-ms", 0.0,
                  "inject this deadline into every request (0 = none)");
    cli.addDouble("rate", 0.0,
                  "target aggregate request rate per second "
                  "(0 = closed loop)");
    cli.addDouble("clients-skewed", 0.0,
                  "fraction of --total driven by one hot client "
                  "connection (0 = uniform; exercises per-client "
                  "quotas)");
    cli.addInt("recv-timeout-ms", 5000, "per-reply wait budget");
    cli.addInt("reconnect-attempts", 5,
               "dial attempts per reconnect sequence");
    cli.addString("report-json", "",
                  "write the JSON report here as well as stdout");
    if (!cli.parse(argc, argv))
        return 1;

    try {
        serve::LoadgenOptions opts;
        opts.connections = cli.getInt("connections");
        requireConfig(cli.getInt("total") >= 1,
                      "--total must be >= 1");
        opts.totalRequests =
            static_cast<std::uint64_t>(cli.getInt("total"));
        opts.deadlineMs = cli.getDouble("deadline-ms");
        opts.targetRatePerSec = cli.getDouble("rate");
        opts.hotClientFraction = cli.getDouble("clients-skewed");
        opts.recvTimeoutMs = cli.getInt("recv-timeout-ms");
        opts.reconnect.maxAttempts = cli.getInt("reconnect-attempts");

        const std::string path = cli.getString("requests");
        if (path == "-") {
            opts.fixtures = readFixtures(std::cin);
        } else {
            std::ifstream in(path);
            requireConfig(static_cast<bool>(in),
                          "cannot open request file " + path);
            opts.fixtures = readFixtures(in);
        }

        const int tcp_port = cli.getInt("tcp-port");
        const std::string tcp_host = cli.getString("tcp-host");
        const std::string unix_path = cli.getString("unix");
        requireConfig(tcp_port >= 0 || !unix_path.empty(),
                      "no server: pass --tcp-port or --unix");
        serve::StreamLimits limits;
        serve::Dialer dial = [&]() {
            net::FdHandle fd = unix_path.empty()
                                   ? net::connectTcp(tcp_host, tcp_port)
                                   : net::connectUnix(unix_path);
            return serve::makeSocketStream(std::move(fd), limits,
                                           "loadgen");
        };

        const serve::LoadReport report = serve::runLoadgen(dial, opts);
        std::cout << report.toJson() << "\n";
        std::cerr << report.describe() << "\n";
        if (!cli.getString("report-json").empty()) {
            std::ofstream out(cli.getString("report-json"));
            requireConfig(static_cast<bool>(out),
                          "cannot open report file " +
                              cli.getString("report-json"));
            out << report.toJson() << "\n";
        }
        if (report.classified() != report.sent) {
            std::cerr << "memsense_loadgen: ledger mismatch: sent "
                      << report.sent << " != classified "
                      << report.classified() << "\n";
            return kExitLedgerMismatch;
        }
        return 0;
    } catch (const std::exception &e) {
        std::cerr << "memsense_loadgen: " << e.what() << "\n";
        return 1;
    }
}
