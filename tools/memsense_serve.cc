/**
 * @file
 * memsense_serve — long-running fault-tolerant evaluation server.
 *
 * Serves the JSON-lines request schema of memsense_eval over TCP,
 * Unix-domain sockets, and/or stdin/stdout, through the memoizing
 * serve::Evaluator, with admission control, per-request deadlines,
 * graceful degradation, and drain-on-signal (see docs/serving.md):
 *
 *     memsense_serve --tcp-port 8321
 *     memsense_serve --unix /tmp/memsense.sock --workers 4
 *     memsense_serve --stdio < requests.jsonl
 *
 * SIGINT/SIGTERM stop accepting, drain the queue (bounded by
 * --drain-deadline-ms), answer everything still owed a reply, flush
 * --metrics/--stats-json artifacts, and exit 0. Exit 1 means the
 * configuration was unusable (bad flags, bind failure).
 *
 * With --stdio and no socket transports the server also exits once the
 * pipe is consumed and every reply is written, so it composes in shell
 * pipelines like the batch tool but with the serving semantics
 * (deadlines, shedding) active.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <fstream>
#include <iostream>
#include <thread>

#include "measure/metrics.hh"
#include "serve/server.hh"
#include "serve/transport.hh"
#include "util/cli.hh"
#include "util/error.hh"
#include "util/trace.hh"

using namespace memsense;

namespace
{

// memsense-lint: allow(mutable-global-state): the signal handler can
// only reach process-global state; one lock-free flag, set by the
// handler, polled by the main watch loop.
std::atomic<bool> gStopRequested{false};

extern "C" void
onShutdownSignal(int)
{
    // Async-signal-safe: a lock-free atomic store and nothing else.
    gStopRequested.store(true, std::memory_order_relaxed);
}

void
installSignalHandlers()
{
    struct sigaction sa = {};
    sa.sa_handler = onShutdownSignal;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    CliParser cli("memsense_serve",
                  "serve JSON-lines solve requests over TCP, Unix "
                  "sockets, or stdio with admission control and "
                  "deadlines");
    cli.addInt("tcp-port", -1,
               "listen on this TCP port (0 = ephemeral; the resolved "
               "port is printed to stderr)");
    cli.addString("tcp-host", "127.0.0.1", "TCP bind address");
    cli.addString("unix", "", "listen on this Unix-domain socket path");
    cli.addBool("stdio", "serve one connection over stdin/stdout");
    cli.addInt("workers", 2, "solver worker threads");
    cli.addInt("max-queue", 256, "admission queue depth cap");
    cli.addInt("max-inflight-kb", 4096,
               "admission cap on queued request bytes (KiB)");
    cli.addInt("max-batch", 16,
               "requests one worker pass coalesces into a single "
               "evaluator batch (1 = no batching)");
    cli.addDouble("batch-linger-ms", 0.0,
                  "wait this long for a partial batch to fill before "
                  "dispatching (0 = dispatch immediately)");
    cli.addInt("max-queue-per-client", 0,
               "per-client queued-request quota; over-quota requests "
               "get quota_exceeded (0 = no quota)");
    cli.addInt("max-inflight-kb-per-client", 0,
               "per-client queued-bytes quota in KiB (0 = no quota)");
    cli.addInt("max-line-kb", 64, "per-request line size cap (KiB)");
    cli.addInt("max-connections", 64, "concurrent connection cap");
    cli.addDouble("default-deadline-ms", 0.0,
                  "deadline applied to requests that carry none "
                  "(0 = none)");
    cli.addDouble("drain-deadline-ms", 2000.0,
                  "queue drain budget after SIGINT/SIGTERM");
    cli.addBool("allow-stale",
                "answer shed requests from the coarse stale cache, "
                "flagged degraded (requests can opt out)");
    cli.addInt("cache-capacity", 1 << 16, "LRU cache entries");
    cli.addInt("cache-shards", 8, "cache shards (rounded to 2^k)");
    cli.addString("metrics", "",
                  "write a metrics JSON snapshot here on exit");
    cli.addString("stats-json", "",
                  "write the server counter ledger here on exit");
    cli.addBool("stats", "print the counter summary to stderr on exit");
    if (!cli.parse(argc, argv))
        return 1;

    try {
        installSignalHandlers();

        serve::ServerOptions opts;
        opts.workers = cli.getInt("workers");
        opts.maxConnections = cli.getInt("max-connections");
        requireConfig(cli.getInt("max-queue") >= 1,
                      "--max-queue must be >= 1");
        opts.maxQueueDepth =
            static_cast<std::size_t>(cli.getInt("max-queue"));
        requireConfig(cli.getInt("max-inflight-kb") >= 1,
                      "--max-inflight-kb must be >= 1");
        opts.maxInflightBytes =
            static_cast<std::size_t>(cli.getInt("max-inflight-kb")) *
            1024u;
        requireConfig(cli.getInt("max-line-kb") >= 1,
                      "--max-line-kb must be >= 1");
        opts.maxLineBytes =
            static_cast<std::size_t>(cli.getInt("max-line-kb")) * 1024u;
        requireConfig(cli.getInt("max-batch") >= 1,
                      "--max-batch must be >= 1");
        opts.maxBatch =
            static_cast<std::size_t>(cli.getInt("max-batch"));
        opts.batchLingerMs = cli.getDouble("batch-linger-ms");
        requireConfig(cli.getInt("max-queue-per-client") >= 0,
                      "--max-queue-per-client must be >= 0");
        opts.maxQueuePerClient = static_cast<std::size_t>(
            cli.getInt("max-queue-per-client"));
        requireConfig(cli.getInt("max-inflight-kb-per-client") >= 0,
                      "--max-inflight-kb-per-client must be >= 0");
        opts.maxInflightBytesPerClient =
            static_cast<std::size_t>(
                cli.getInt("max-inflight-kb-per-client")) *
            1024u;
        opts.defaultDeadlineMs = cli.getDouble("default-deadline-ms");
        opts.drainDeadlineMs = cli.getDouble("drain-deadline-ms");
        opts.allowStale = cli.getBool("allow-stale");
        requireConfig(cli.getInt("cache-capacity") >= 1,
                      "--cache-capacity must be >= 1");
        opts.eval.cache.capacity =
            static_cast<std::size_t>(cli.getInt("cache-capacity"));
        opts.eval.cache.shards = cli.getInt("cache-shards");

        const bool want_metrics = !cli.getString("metrics").empty();
        if (want_metrics)
            trace::setStatsEnabled(true);

        serve::StreamLimits stream_limits;
        stream_limits.maxLineBytes = opts.maxLineBytes;

        serve::Server server(opts);
        const bool use_stdio = cli.getBool("stdio");
        bool any_socket = false;
        if (cli.getInt("tcp-port") >= 0) {
            net::Listener l = net::listenTcp(cli.getString("tcp-host"),
                                             cli.getInt("tcp-port"));
            std::cerr << "memsense_serve: listening on " << l.address
                      << "\n";
            server.addTransport(
                serve::makeSocketTransport(std::move(l),
                                           stream_limits));
            any_socket = true;
        }
        if (!cli.getString("unix").empty()) {
            net::Listener l = net::listenUnix(cli.getString("unix"));
            std::cerr << "memsense_serve: listening on " << l.address
                      << "\n";
            server.addTransport(
                serve::makeSocketTransport(std::move(l),
                                           stream_limits));
            any_socket = true;
        }
        if (use_stdio)
            server.addTransport(serve::makeStdioTransport(stream_limits));
        requireConfig(any_socket || use_stdio,
                      "no transport: pass --tcp-port, --unix, and/or "
                      "--stdio");

        server.start();

        // Watch loop: wait for a shutdown signal — or, in pure stdio
        // mode, for the pipe to be consumed and answered.
        const bool exit_on_idle = use_stdio && !any_socket;
        while (!gStopRequested.load(std::memory_order_relaxed)) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
            if (exit_on_idle &&
                server.stats().connections > 0 &&
                server.activeConnectionCount() == 0)
                break;
        }
        server.stop();

        const serve::ServerStats stats = server.stats();
        if (want_metrics) {
            measure::MetricsRegistry::instance().flushToFile(
                cli.getString("metrics"), "memsense_serve");
        }
        if (!cli.getString("stats-json").empty()) {
            std::ofstream out(cli.getString("stats-json"));
            requireConfig(static_cast<bool>(out),
                          "cannot open stats file " +
                              cli.getString("stats-json"));
            out << stats.toJson() << "\n";
        }
        if (cli.getBool("stats"))
            std::cerr << stats.describe() << "\n";
        return 0;
    } catch (const std::exception &e) {
        std::cerr << "memsense_serve: " << e.what() << "\n";
        return 1;
    }
}
