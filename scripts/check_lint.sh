#!/usr/bin/env bash
# Lint gate: build memsense-lint and run every rule over the tree,
# suppressing only the findings recorded in the committed baseline
# (lint_baseline.json at the repo root). Any finding not in the
# baseline fails the gate, so new code cannot add debt silently.
#
# To accept a deliberate finding instead of fixing it, prefer an
# inline `// memsense-lint: allow(<rule>): <reason>` comment; extend
# the baseline only for pre-existing debt:
#
#   build/tools/memsense_lint/memsense_lint \
#       --exclude=fixtures --write-baseline=lint_baseline.json \
#       src bench tools tests
#
# Usage: scripts/check_lint.sh [build_dir]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"

if [[ ! -x "${build_dir}/tools/memsense_lint/memsense_lint" ]]; then
    cmake -B "${build_dir}" -S "${repo_root}" > /dev/null
fi
cmake --build "${build_dir}" -j --target memsense_lint > /dev/null

# Run from the repo root with relative roots so finding paths match
# the committed baseline keys byte-for-byte.
cd "${repo_root}"
"${build_dir}/tools/memsense_lint/memsense_lint" \
    --exclude=fixtures \
    --baseline=lint_baseline.json \
    src bench tools tests

echo "check_lint: tree is clean against lint_baseline.json"
