#!/usr/bin/env bash
# Build the tree with AddressSanitizer and run the fault-tolerance
# suite: retry policy, fault-injection harness, and the resilient
# executor (quarantine, deadlines, checkpoint/resume). Injected faults
# exercise every error path, so a clean exit means the retry loops,
# exception capture, and journal replay leak and corrupt nothing even
# while faults are firing.
#
# Usage: scripts/check_faults.sh [build_dir]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build-asan}"

cmake -B "${build_dir}" -S "${repo_root}" \
    -DMEMSENSE_SANITIZE=address \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo

# Only the fault-tolerance targets: the rest of the suite has its own
# sanitizer passes (check_tsan.sh, check_ubsan.sh). The serve targets
# joined this pass when MS_FAULT_POINT grew through the server's
# accept/read/parse/enqueue/solve/write path.
cmake --build "${build_dir}" -j \
    --target util_retry_test util_fault_injection_test \
    measure_resilience_test serve_evaluator_test \
    serve_server_test serve_loadgen_test serve_soak_test

export ASAN_OPTIONS="halt_on_error=1 detect_leaks=1 ${ASAN_OPTIONS:-}"

ctest --test-dir "${build_dir}" --output-on-failure \
    -R 'Retry|FaultInjection|MeasureResilienceTest|EvaluatorFault|ServeServer|ServeSoak|LoadgenRun|LoadgenRequestLine'

echo "Fault check passed: retry, injection, checkpoint, and serving" \
     "paths are clean under ASan."
