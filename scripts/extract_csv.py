#!/usr/bin/env python3
"""Extract the delimited CSV blocks from a bench run.

Every reproduction binary prints its data series between
`--- BEGIN CSV <name> ---` / `--- END CSV <name> ---` markers. This
script splits a captured run (e.g. bench_output.txt) into one .csv
file per block so the figures can be re-plotted with any tool:

    for b in build/bench/*; do $b; done > bench_output.txt 2>&1
    python3 scripts/extract_csv.py bench_output.txt out_csv/

No third-party dependencies.
"""

import os
import re
import sys

BEGIN = re.compile(r"^--- BEGIN CSV (.+?) ---$")
END = re.compile(r"^--- END CSV .+? ---$")


def sanitize(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "_", name.strip())


def extract(source: str, outdir: str) -> int:
    os.makedirs(outdir, exist_ok=True)
    count = 0
    current = None
    rows = []
    with open(source, encoding="utf-8", errors="replace") as fh:
        for line in fh:
            line = line.rstrip("\n")
            m = BEGIN.match(line)
            if m:
                current = sanitize(m.group(1))
                rows = []
                continue
            if END.match(line):
                if current is None:
                    continue
                path = os.path.join(outdir, current + ".csv")
                with open(path, "w", encoding="utf-8") as out:
                    out.write("\n".join(rows) + "\n")
                count += 1
                current = None
                continue
            if current is not None:
                rows.append(line)
    return count


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__)
        return 1
    n = extract(sys.argv[1], sys.argv[2])
    print(f"wrote {n} csv files to {sys.argv[2]}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
