#!/usr/bin/env bash
# Build the whole tree with UndefinedBehaviorSanitizer and run the
# full test suite. A clean exit means UBSan observed no undefined
# behavior (overflow, bad shifts, bad casts, misaligned access, ...)
# anywhere the tier-1 tests reach.
#
# Usage: scripts/check_ubsan.sh [build_dir]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build-ubsan}"

cmake -B "${build_dir}" -S "${repo_root}" \
    -DMEMSENSE_SANITIZE=undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo

cmake --build "${build_dir}" -j

# The build already sets -fno-sanitize-recover=all, so any report is
# fatal; print_stacktrace makes the report actionable.
export UBSAN_OPTIONS="print_stacktrace=1 halt_on_error=1 ${UBSAN_OPTIONS:-}"

ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)"

echo "UBSan check passed: no undefined behavior reached by the tests."
