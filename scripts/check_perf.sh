#!/usr/bin/env bash
# Performance gate: build Release, run the perf suite (bench/perf_suite),
# write a fresh BENCH_memsense.json, and diff it against the committed
# copy at the repo root. A config whose warm-median wall time regressed
# by more than the threshold (default 25%) is flagged.
#
# Wall-clock measurements on a shared/loaded machine are noisy, so the
# check is ADVISORY by default: regressions are printed but the script
# exits 0. Set CHECK_PERF_STRICT=1 (CI on a quiet runner) to make a
# flagged regression fail the build. To refresh the committed trajectory
# after intentional perf work, copy the fresh file over the committed
# one — the pre-campaign "baseline_pre_pr" section is carried forward
# automatically.
#
# Usage: scripts/check_perf.sh [build_dir]
#   CHECK_PERF_STRICT=1     exit non-zero on a flagged regression
#   CHECK_PERF_THRESHOLD=25 regression threshold, percent
#   CHECK_PERF_ARGS="..."   extra perf_suite arguments (e.g.
#                           --skip-microbench for a quick pass)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
committed="${repo_root}/BENCH_memsense.json"
threshold="${CHECK_PERF_THRESHOLD:-25}"

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" -j --target \
    perf_suite perf_microbench fig03_cpi_fits fig07_queuing_delay

fresh="$(mktemp -d)/BENCH_memsense.json"
"${build_dir}/bench/perf_suite" \
    --out "${fresh}" \
    --carry-baseline "${committed}" \
    ${CHECK_PERF_ARGS:-}

if [[ ! -f "${committed}" ]]; then
    echo "No committed BENCH_memsense.json; bootstrapping from this run."
    cp "${fresh}" "${committed}"
    exit 0
fi

# The comparison's exit status is inspected below; suspend -e so a
# flagged regression reaches the advisory/strict branch.
set +e
python3 - "${committed}" "${fresh}" "${threshold}" <<'EOF'
import json, sys

committed = json.load(open(sys.argv[1]))
fresh = json.load(open(sys.argv[2]))
threshold = float(sys.argv[3])

regressions = []
for key, old in committed.get("end_to_end", {}).items():
    new = fresh.get("end_to_end", {}).get(key)
    if new is None:
        print(f"note: {key} missing from the fresh run")
        continue
    o, n = old["warm_median_s"], new["warm_median_s"]
    delta = 100.0 * (n - o) / o if o else 0.0
    flag = " <-- REGRESSION" if delta > threshold else ""
    print(f"{key}: committed {o:.3f}s, fresh {n:.3f}s ({delta:+.1f}%){flag}")
    if delta > threshold:
        regressions.append(key)

base = committed.get("baseline_pre_pr", {}).get("end_to_end", {})
for key, old in base.items():
    new = fresh.get("end_to_end", {}).get(key)
    if new is None or not old.get("warm_median_s"):
        continue
    speedup = old["warm_median_s"] / new["warm_median_s"]
    print(f"{key}: {speedup:.2f}x vs pre-campaign baseline")

# serve_batch: higher is better (requests/s), and the batched mode
# must stay ahead of the one-request-per-pass baseline.
old_sb = committed.get("serve_batch")
new_sb = fresh.get("serve_batch")
if new_sb:
    ratio = new_sb["batched_speedup"]
    print(f"serve_batch: fresh baseline {new_sb['baseline_rps']:.0f} rps,"
          f" batched {new_sb['batched_rps']:.0f} rps ({ratio:.2f}x)")
    if old_sb and old_sb.get("batched_rps"):
        o, n = old_sb["batched_rps"], new_sb["batched_rps"]
        delta = 100.0 * (n - o) / o
        flag = " <-- REGRESSION" if -delta > threshold else ""
        print(f"serve_batch.batched_rps: committed {o:.0f},"
              f" fresh {n:.0f} ({delta:+.1f}%){flag}")
        if -delta > threshold:
            regressions.append("serve_batch.batched_rps")
    if ratio < 1.0:
        print("serve_batch: batching is SLOWER than the baseline"
              " <-- REGRESSION")
        regressions.append("serve_batch.batched_speedup")
else:
    print("note: serve_batch missing from the fresh run")

sys.exit(1 if regressions else 0)
EOF
rc=$?
set -e

if [[ ${rc} -ne 0 ]]; then
    if [[ "${CHECK_PERF_STRICT:-0}" == "1" ]]; then
        echo "FAIL: performance regression beyond ${threshold}%" >&2
        exit 1
    fi
    echo "WARNING: regression flagged (advisory; CHECK_PERF_STRICT=1 to enforce)"
fi
echo "Fresh results left at ${fresh}; copy over ${committed} to refresh."
