#!/usr/bin/env bash
# Static analysis gate: build the project linter and run it over the
# tree, then run clang-tidy if one is installed. Exits non-zero on any
# finding, so CI and pre-commit hooks can use it directly.
#
# Usage: scripts/check_static.sh [build_dir]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"

cmake -B "${build_dir}" -S "${repo_root}" \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null

cmake --build "${build_dir}" -j --target memsense_lint

# Relative roots keep finding paths identical to the committed
# baseline keys; the SARIF report feeds code-scanning UIs (GitHub
# code scanning, VS Code SARIF viewer).
(cd "${repo_root}" && "${build_dir}/tools/memsense_lint/memsense_lint" \
    --exclude=fixtures \
    --baseline=lint_baseline.json \
    --json="${build_dir}/lint_report.json" \
    --sarif="${build_dir}/lint_report.sarif" \
    src bench tools tests)
echo "memsense-lint passed (reports: ${build_dir}/lint_report.json," \
     "${build_dir}/lint_report.sarif)"

if command -v clang-tidy > /dev/null 2>&1; then
    mapfile -t sources < <(find "${repo_root}/src" -name '*.cc' | sort)
    clang-tidy -p "${build_dir}" --quiet "${sources[@]}"
    echo "clang-tidy passed"
else
    echo "notice: clang-tidy not installed; skipping that pass"
fi

echo "Static analysis passed."
