#!/usr/bin/env bash
# Determinism check of the batch evaluation service: build memsense_eval
# under AddressSanitizer, run the 50-request fixture at several worker
# counts plus a warm-cache rerun, and require every result stream to be
# byte-identical to the checked-in golden. Catches both memory errors
# in the serve stack and any drift in the serving determinism contract
# (docs/serving.md).
#
# Usage: scripts/check_serve.sh [build_dir]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build-asan}"

requests="${repo_root}/tests/serve/requests_50.jsonl"
golden="${repo_root}/tests/golden/serve_eval_50.jsonl"

cmake -B "${build_dir}" -S "${repo_root}" \
    -DMEMSENSE_SANITIZE=address \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo

cmake --build "${build_dir}" -j --target memsense_eval

export ASAN_OPTIONS="halt_on_error=1 ${ASAN_OPTIONS:-}"

eval_bin="${build_dir}/tools/memsense_eval"
scratch="$(mktemp -d)"
trap 'rm -rf "${scratch}"' EXIT

for jobs in 1 2 8; do
    "${eval_bin}" --requests "${requests}" --jobs "${jobs}" \
        > "${scratch}/out_j${jobs}.jsonl"
    diff -u "${golden}" "${scratch}/out_j${jobs}.jsonl" || {
        echo "FAIL: --jobs ${jobs} output differs from golden" >&2
        exit 1
    }
    echo "OK: --jobs ${jobs} matches golden"
done

# Warm rerun: evaluate the batch three times against the same cache
# and emit only the final pass — must still be byte-identical.
"${eval_bin}" --requests "${requests}" --jobs 4 --repeat 3 \
    > "${scratch}/out_warm.jsonl"
diff -u "${golden}" "${scratch}/out_warm.jsonl" || {
    echo "FAIL: warm-cache rerun output differs from golden" >&2
    exit 1
}
echo "OK: warm-cache rerun matches golden"

echo "Serve check passed: byte-identical results at every worker" \
     "count and cache temperature, with no ASan reports."
