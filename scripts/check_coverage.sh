#!/usr/bin/env bash
# Build the tree with gcov instrumentation (MEMSENSE_COVERAGE=ON),
# run the full test suite, and report line coverage aggregated per
# top-level source directory. The model layer is the paper's analytic
# core — Eq. 1/Eq. 4, the queuing curve, the fixed-point solver — so
# it carries a hard floor: the script fails when src/model line
# coverage drops below MEMSENSE_COVERAGE_FLOOR (default 80%).
#
# Usage: scripts/check_coverage.sh [build_dir]
#
# Environment:
#   MEMSENSE_COVERAGE_FLOOR   minimum src/model line % (default 80)
#   MEMSENSE_COVERAGE_JOBS    ctest parallelism (default: nproc)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build-coverage}"
floor_pct="${MEMSENSE_COVERAGE_FLOOR:-80}"
jobs="${MEMSENSE_COVERAGE_JOBS:-$(nproc)}"

cmake -B "${build_dir}" -S "${repo_root}" \
    -DMEMSENSE_COVERAGE=ON \
    -DCMAKE_BUILD_TYPE=Debug

cmake --build "${build_dir}" -j

# Fresh counters: .gcda files accumulate across runs, so a stale set
# would hide coverage lost since the last invocation.
find "${build_dir}" -name '*.gcda' -delete

ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"

# gcov -n prints, for every source a .gcda touches:
#   File '/abs/path/to/file.cc'
#   Lines executed:NN.NN% of M
# The same header appears once per including TU with per-TU counts, so
# aggregate per *file* first (keeping the best-covered instance), then
# per top-level directory.
gcda_list="$(find "${build_dir}" -name '*.gcda')"
if [ -z "${gcda_list}" ]; then
    echo "check_coverage: no .gcda files produced — did ctest run?" >&2
    exit 1
fi

# shellcheck disable=SC2086
gcov -n ${gcda_list} 2>/dev/null |
    awk -v root="${repo_root}/" -v floor="${floor_pct}" '
    /^File / {
        file = $0
        sub(/^File /, "", file)
        gsub(/\047/, "", file)           # strip the quotes
        next
    }
    /^Lines executed:/ {
        if (file == "" || index(file, root) != 1) { file = ""; next }
        rel = substr(file, length(root) + 1)
        if (rel !~ /^(src|bench|tools)\//) { file = ""; next }
        pct = $0
        sub(/^Lines executed:/, "", pct)
        sub(/% of .*/, "", pct)
        n = $0
        sub(/.*% of /, "", n)
        hit = pct / 100.0 * n
        # Keep the best-covered instance of each file.
        if (!(rel in file_lines) || hit > file_hit[rel]) {
            file_hit[rel] = hit
            file_lines[rel] = n
        }
        file = ""
        next
    }
    END {
        for (rel in file_lines) {
            n = split(rel, parts, "/")
            # src/model/solver.cc -> src/model; bench/foo.cc -> bench
            dir = (n >= 3) ? parts[1] "/" parts[2] : parts[1]
            dir_hit[dir] += file_hit[rel]
            dir_lines[dir] += file_lines[rel]
        }
        printf "%-18s %10s %10s %8s\n", "directory", "lines", "covered", "pct"
        fail = 0
        for (dir in dir_lines) {
            pct = 100.0 * dir_hit[dir] / dir_lines[dir]
            printf "%-18s %10d %10d %7.2f%%\n", dir, dir_lines[dir],
                   dir_hit[dir], pct
            if (dir == "src/model" && pct < floor) {
                model_pct = pct
                fail = 1
            }
        }
        if (fail) {
            printf "check_coverage: src/model line coverage %.2f%% is " \
                   "below the %.0f%% floor\n", model_pct, floor > "/dev/stderr"
            exit 1
        }
    }'

echo "Coverage check passed: src/model is at or above ${floor_pct}% line coverage."
