#!/usr/bin/env bash
# Chaos harness for the long-running evaluation server: build the
# daemon and the load generator under AddressSanitizer, then drive a
# real memsense_serve process over a Unix socket through a matrix of
# injected fault sites and stress configurations. Every scenario must
# end with: loadgen exit 0 with every request classified, server exit 0
# after SIGTERM, and a consistent reply ledger in --stats-json
# (accepted == ok + error + write-failure replies). The batch tool's
# golden output is re-checked at the end so none of the serving-layer
# churn can drift the byte-stable evaluation contract.
#
# Faults reach the server through MEMSENSE_FAULTS; the loadgen runs
# with that variable stripped so only the server misbehaves.
#
# Usage: scripts/check_chaos.sh [build_dir]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build-asan}"

cmake -B "${build_dir}" -S "${repo_root}" \
    -DMEMSENSE_SANITIZE=address \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo

cmake --build "${build_dir}" -j \
    --target memsense_serve_bin memsense_loadgen memsense_eval

export ASAN_OPTIONS="halt_on_error=1 detect_leaks=1 ${ASAN_OPTIONS:-}"

serve_bin="${build_dir}/tools/memsense_serve"
loadgen_bin="${build_dir}/tools/memsense_loadgen"
eval_bin="${build_dir}/tools/memsense_eval"
fixture_src="${repo_root}/tests/serve/requests_50.jsonl"
golden="${repo_root}/tests/golden/serve_eval_50.jsonl"

scratch="$(mktemp -d)"
# The shared fixture carries a deliberately-malformed line for the
# batch tool's parse-error path; the loadgen replays JSON objects only
# (malformed-line handling is covered by serve_server_test).
requests="${scratch}/requests.jsonl"
grep '^{' "${fixture_src}" > "${requests}"
server_pid=""
cleanup() {
    [ -n "${server_pid}" ] && kill "${server_pid}" 2>/dev/null || true
    [ -n "${server_pid}" ] && wait "${server_pid}" 2>/dev/null || true
    rm -rf "${scratch}"
}
trap cleanup EXIT

require_json_field() { # file needle label
    grep -q "$2" "$1" || {
        echo "FAIL($3): $2 not found in $1" >&2
        cat "$1" >&2
        exit 1
    }
}

# Run one scenario: start the server with the given fault spec and
# extra flags, fire the loadgen at it, SIGTERM the server, and check
# both exit codes plus the server's ledger consistency.
#   run_scenario <name> <fault_spec> <loadgen_extra...>
# Extra server flags come in via the SERVER_FLAGS array variable.
run_scenario() {
    local name="$1" faults="$2"
    shift 2
    local sock="${scratch}/${name}.sock"
    local stats="${scratch}/${name}.stats.json"
    local report="${scratch}/${name}.report.json"

    echo "=== scenario ${name} (faults: ${faults:-none}) ==="
    MEMSENSE_FAULTS="${faults}" "${serve_bin}" --unix "${sock}" \
        --stats-json "${stats}" "${SERVER_FLAGS[@]}" \
        2>"${scratch}/${name}.server.log" &
    server_pid=$!

    # Wait for the socket to appear (the server unlinks stale ones).
    for _ in $(seq 1 100); do
        [ -S "${sock}" ] && break
        kill -0 "${server_pid}" 2>/dev/null || {
            echo "FAIL(${name}): server died on startup" >&2
            cat "${scratch}/${name}.server.log" >&2
            exit 1
        }
        sleep 0.05
    done

    env -u MEMSENSE_FAULTS "${loadgen_bin}" --unix "${sock}" \
        --requests "${requests}" --connections 4 --total 200 \
        --recv-timeout-ms 10000 --report-json "${report}" "$@" \
        >/dev/null 2>"${scratch}/${name}.loadgen.log" || {
        echo "FAIL(${name}): loadgen exited non-zero" >&2
        cat "${scratch}/${name}.loadgen.log" >&2
        exit 1
    }

    kill -TERM "${server_pid}"
    local rc=0
    wait "${server_pid}" || rc=$?
    server_pid=""
    if [ "${rc}" -ne 0 ]; then
        echo "FAIL(${name}): server exit ${rc} after SIGTERM" >&2
        cat "${scratch}/${name}.server.log" >&2
        exit 1
    fi

    # The two ledgers: every accepted request got exactly one reply
    # (server side), every sent request got classified (client side).
    require_json_field "${stats}" '"consistent":true' "${name}"
    echo "OK: ${name}"
}

# --- Scenario matrix ---------------------------------------------------

# Baseline: no faults, default admission config.
SERVER_FLAGS=(--workers 2)
run_scenario baseline ""

# One scenario per server-side fault site, firing probabilistically.
for site in server.read server.parse server.enqueue server.solve \
            server.write evaluator.solve; do
    SERVER_FLAGS=(--workers 2)
    run_scenario "fault-${site}" "seed=7;${site}:throw:p=0.1"
done

# Delay faults jam the workers; a tiny queue must shed, not wedge.
SERVER_FLAGS=(--workers 1 --max-queue 4)
run_scenario overload "seed=7;server.solve:delay=20:p=0.5"
overload_report="${scratch}/overload.report.json"
require_json_field "${overload_report}" '"overloaded":' overload
python3 - "${overload_report}" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
sent = r["sent"]
shed = r["overloaded"]
assert sent == 200, f"loadgen lost requests: {r}"
assert r["ok"] > 0, f"nothing succeeded under overload: {r}"
assert shed < sent, f"everything was shed: {r}"
EOF
echo "OK: overload shedding is bounded (some ok, some shed, none lost)"

# Deadline pressure: every request carries a tight budget while solves
# are randomly delayed; replies must be ok or deadline_exceeded.
SERVER_FLAGS=(--workers 2 --default-deadline-ms 15)
run_scenario deadlines "seed=11;server.solve:delay=25:p=0.4" \
    --deadline-ms 15

# Stale degradation: same overload, but the server may answer from the
# coarse fingerprint cache instead of shedding outright.
SERVER_FLAGS=(--workers 1 --max-queue 4 --allow-stale)
run_scenario degraded "seed=7;server.solve:delay=20:p=0.5"

# --- Batching x quota matrix -------------------------------------------

# Fault sites with batching on: server.batch fires between batch
# assembly and the evaluator call, and the solve-path sites now cover
# the coalesced dispatch shape as well.
for site in server.batch server.solve evaluator.solve; do
    SERVER_FLAGS=(--workers 2 --max-batch 16 --batch-linger-ms 5)
    run_scenario "batch-fault-${site}" "seed=13;${site}:throw:p=0.1"
done

# Batched overload: delay faults hold the worker while the queue
# builds, so drain passes actually coalesce multi-request batches.
SERVER_FLAGS=(--workers 1 --max-queue 32 --max-batch 16 \
              --batch-linger-ms 5)
run_scenario batch-overload "seed=19;server.solve:delay=20:p=0.5"
require_json_field "${scratch}/batch-overload.stats.json" \
    '"batches":' batch-overload

# Per-client quotas under a skewed client mix: two oversized requests
# in the fixture exceed the 1 KiB per-client byte quota every time
# they are sent, so quota sheds MUST appear, as `quota_exceeded` on
# the client side and `quota_shed` (globally and in the per-client
# ledgers) on the server side — while everything else keeps flowing.
fat_pad="$(head -c 1200 /dev/zero | tr '\0' 'x')"
quota_requests="${scratch}/quota_requests.jsonl"
cp "${requests}" "${quota_requests}"
echo "{\"workload\":{\"mpki\":47.5},\"pad\":\"${fat_pad}\"}" \
    >> "${quota_requests}"
echo "{\"workload\":{\"mpki\":48.5},\"pad\":\"${fat_pad}\"}" \
    >> "${quota_requests}"
sock="${scratch}/quota.sock"
stats="${scratch}/quota.stats.json"
report="${scratch}/quota.report.json"
echo "=== scenario quota-skew (faults: server.solve delay) ==="
MEMSENSE_FAULTS="seed=23;server.solve:delay=5:p=0.3" \
    "${serve_bin}" --unix "${sock}" --stats-json "${stats}" \
    --workers 2 --max-batch 16 --batch-linger-ms 2 \
    --max-queue-per-client 8 --max-inflight-kb-per-client 1 \
    2>"${scratch}/quota.server.log" &
server_pid=$!
for _ in $(seq 1 100); do
    [ -S "${sock}" ] && break
    sleep 0.05
done
env -u MEMSENSE_FAULTS "${loadgen_bin}" --unix "${sock}" \
    --requests "${quota_requests}" --connections 4 --total 200 \
    --clients-skewed 0.5 --recv-timeout-ms 10000 \
    --report-json "${report}" \
    >/dev/null 2>"${scratch}/quota.loadgen.log" || {
    echo "FAIL(quota-skew): loadgen exited non-zero" >&2
    cat "${scratch}/quota.loadgen.log" >&2
    exit 1
}
kill -TERM "${server_pid}"
rc=0
wait "${server_pid}" || rc=$?
server_pid=""
[ "${rc}" -eq 0 ] || {
    echo "FAIL(quota-skew): server exit ${rc} after SIGTERM" >&2
    cat "${scratch}/quota.server.log" >&2
    exit 1
}
require_json_field "${stats}" '"consistent":true' quota-skew
require_json_field "${stats}" '"clients":{' quota-skew
python3 - "${report}" "${stats}" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
stats = json.load(open(sys.argv[2]))
assert report["sent"] == 200, f"loadgen lost requests: {report}"
assert report["quota_exceeded"] > 0, f"no quota sheds: {report}"
assert report["ok"] > 0, f"nothing succeeded beside the fat lines: {report}"
assert stats["quota_shed"] == report["quota_exceeded"], \
    f'ledger mismatch: {stats["quota_shed"]} vs {report["quota_exceeded"]}'
per_client = sum(c["quota_shed"] for c in stats["clients"].values())
assert per_client == stats["quota_shed"], \
    f'per-client quota ledger disagrees: {per_client} vs {stats["quota_shed"]}'
EOF
echo "OK: quota-skew (quota sheds ledgered globally and per client)"

# --- Golden guard ------------------------------------------------------
# The serving layer must not have drifted the batch tool's bytes
# (the full fixture here, malformed line included).
"${eval_bin}" --requests "${fixture_src}" --jobs 4 \
    > "${scratch}/eval.jsonl"
diff -u "${golden}" "${scratch}/eval.jsonl" || {
    echo "FAIL: memsense_eval output drifted from golden" >&2
    exit 1
}
echo "OK: memsense_eval golden is byte-identical"

echo "Chaos check passed: the server survived every fault site and" \
     "overload shape with a consistent ledger, under ASan."
