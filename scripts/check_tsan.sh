#!/usr/bin/env bash
# Build the tree with ThreadSanitizer and run the parallel-engine
# tests. A clean exit means TSan found no data races in the thread
# pool, the parallel executor, or the logging sink.
#
# Usage: scripts/check_tsan.sh [build_dir]
#
# Use MEMSENSE_SANITIZE=address the same way for an ASan pass:
#   cmake -B build-asan -S . -DMEMSENSE_SANITIZE=address
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build-tsan}"

cmake -B "${build_dir}" -S "${repo_root}" \
    -DMEMSENSE_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo

# Only the targets under test: a full TSan build of every bench binary
# is slow and adds nothing to the race check.
cmake --build "${build_dir}" -j \
    --target util_thread_pool_test measure_parallel_test

# halt_on_error makes the first race fail the run instead of just
# printing a report.
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"

ctest --test-dir "${build_dir}" --output-on-failure \
    -R 'ThreadPoolTest|MeasureParallelTest'

echo "TSan check passed: no data races in the parallel engine."
